"""Unit tests for comm: params codec, all-reduce, topology, gossip, volume."""

import numpy as np
import pytest

from repro import nn
from repro.nn import models
from repro.comm import (
    CommVolumeAccountant,
    FlatParamCodec,
    complete_topology,
    device_volume,
    directed_ring,
    fedavg_server_volume,
    get_flat_params,
    gossip_average,
    model_nbytes,
    random_regular_topology,
    ring_allreduce,
    ring_allreduce_detailed,
    set_flat_params,
)
from repro.comm.allreduce import ring_allreduce_buffers
from repro.comm.gossip import neighborhood_average

RNG = np.random.default_rng(17)


class TestParamCodec:
    def _model(self, seed=0):
        return models.SimpleCNN(image_size=8, width=4, rng=np.random.default_rng(seed))

    def test_flatten_size_matches(self):
        model = self._model()
        codec = FlatParamCodec(model)
        flat = codec.flatten(model)
        param_scalars = model.num_parameters()
        buffer_scalars = sum(b.size for _, b in model.named_buffers())
        assert flat.size == param_scalars + buffer_scalars

    def test_roundtrip_restores_model(self):
        model = self._model(0)
        other = self._model(1)
        codec = FlatParamCodec(model)
        codec.unflatten(other, codec.flatten(model))
        for (_, pa), (_, pb) in zip(model.named_parameters(), other.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)
        for (_, ba), (_, bb) in zip(model.named_buffers(), other.named_buffers()):
            np.testing.assert_array_equal(ba, bb)

    def test_exclude_buffers(self):
        model = self._model()
        with_buffers = FlatParamCodec(model, include_buffers=True)
        without = FlatParamCodec(model, include_buffers=False)
        assert without.num_scalars == model.num_parameters()
        assert with_buffers.num_scalars > without.num_scalars

    def test_wrong_size_raises(self):
        model = self._model()
        codec = FlatParamCodec(model)
        with pytest.raises(ValueError):
            codec.unflatten(model, np.zeros(3))

    def test_nbytes_wire_width(self):
        model = self._model()
        codec = FlatParamCodec(model)
        # Default wire: lossless fp64 at 8 B/scalar.
        assert codec.nbytes == codec.num_scalars * 8
        assert model_nbytes(model) == codec.nbytes
        # Narrow wires shrink the same state proportionally.
        assert codec.nbytes_for("fp32") == codec.num_scalars * 4
        assert codec.nbytes_for("fp16") == codec.num_scalars * 2
        assert model_nbytes(model, wire="fp32") == codec.nbytes_for("fp32")

    def test_one_shot_helpers(self):
        model = self._model()
        flat = get_flat_params(model)
        set_flat_params(model, np.zeros_like(flat))
        assert np.abs(get_flat_params(model)).max() == 0


class TestRingAllreduce:
    @pytest.mark.parametrize("k,n", [(2, 10), (3, 7), (4, 16), (5, 3), (7, 100)])
    def test_matches_mean(self, k, n):
        vectors = [RNG.normal(size=n) for _ in range(k)]
        result = ring_allreduce(vectors)
        np.testing.assert_allclose(result, np.mean(vectors, axis=0), atol=1e-12)

    def test_sum_mode(self):
        vectors = [RNG.normal(size=8) for _ in range(3)]
        result = ring_allreduce(vectors, average=False)
        np.testing.assert_allclose(result, np.sum(vectors, axis=0), atol=1e-12)

    def test_all_nodes_converge_to_same_buffer(self):
        vectors = [RNG.normal(size=13) for _ in range(4)]
        buffers = ring_allreduce_buffers(vectors)
        for buf in buffers[1:]:
            np.testing.assert_allclose(buf, buffers[0], atol=1e-12)

    def test_single_node_identity(self):
        v = RNG.normal(size=5)
        result, stats = ring_allreduce_detailed([v])
        np.testing.assert_allclose(result, v)
        assert stats.steps == 0
        assert stats.total_bytes == 0

    def test_stats_step_count(self):
        vectors = [RNG.normal(size=100) for _ in range(4)]
        _, stats = ring_allreduce_detailed(vectors)
        assert stats.steps == 2 * 3
        assert stats.num_nodes == 4
        # 25 scalars per segment at the fp64 wire's 8 B/scalar.
        assert stats.bytes_sent_per_node == stats.steps * 25 * 8

    def test_vector_shorter_than_ring(self):
        vectors = [RNG.normal(size=2) for _ in range(5)]
        np.testing.assert_allclose(
            ring_allreduce(vectors), np.mean(vectors, axis=0), atol=1e-12
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ring_allreduce([np.zeros(3), np.zeros(4)])

    def test_non_flat_raises(self):
        with pytest.raises(ValueError):
            ring_allreduce([np.zeros((2, 2)), np.zeros((2, 2))])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ring_allreduce([])


class TestTopology:
    def test_directed_ring_structure(self):
        topo = directed_ring([3, 1, 4, 2], rng=np.random.default_rng(0))
        assert topo.is_ring()
        assert len(topo) == 4
        order = topo.ring_order()
        assert sorted(order) == [1, 2, 3, 4]
        # Walking downstream from each node returns home in exactly 4 hops.
        node = order[0]
        for _ in range(4):
            node = topo.downstream(node)
        assert node == order[0]

    def test_ring_upstream_inverse_of_downstream(self):
        topo = directed_ring([0, 1, 2], rng=np.random.default_rng(1))
        for node in topo.nodes:
            assert topo.upstream(topo.downstream(node)) == node

    def test_ring_shuffle_randomises_order(self):
        orders = {
            tuple(directed_ring(range(6), rng=np.random.default_rng(s)).ring_order())
            for s in range(10)
        }
        assert len(orders) > 1

    def test_single_node_ring(self):
        topo = directed_ring([7], shuffle=False)
        assert len(topo) == 1
        assert topo.successors(7) == []

    def test_two_node_ring(self):
        topo = directed_ring([0, 1], shuffle=False)
        assert topo.downstream(0) == 1
        assert topo.downstream(1) == 0

    def test_duplicate_ids_raise(self):
        with pytest.raises(ValueError):
            directed_ring([1, 1, 2])

    def test_complete_topology(self):
        topo = complete_topology([0, 1, 2])
        assert not topo.is_ring()
        assert topo.is_strongly_connected()
        assert set(topo.successors(0)) == {1, 2}

    def test_random_regular_connected(self):
        topo = random_regular_topology(range(8), degree=3, rng=np.random.default_rng(0))
        assert topo.is_strongly_connected()
        assert all(topo.graph.out_degree(n) == 3 for n in topo.nodes)

    def test_random_regular_validation(self):
        with pytest.raises(ValueError):
            random_regular_topology([0, 1], degree=2)
        with pytest.raises(ValueError):
            random_regular_topology(range(5), degree=3)  # odd product


class TestGossip:
    def test_uniform_average(self):
        vectors = [RNG.normal(size=6) for _ in range(3)]
        np.testing.assert_allclose(
            gossip_average(vectors), np.mean(vectors, axis=0), atol=1e-12
        )

    def test_weighted_average(self):
        vectors = [np.zeros(4), np.ones(4)]
        result = gossip_average(vectors, weights=[1.0, 3.0])
        np.testing.assert_allclose(result, np.full(4, 0.75))

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            gossip_average([np.zeros(2)], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            gossip_average([np.zeros(2), np.ones(2)], weights=[-1.0, 1.0])

    def test_neighborhood_average_complete_graph_is_mean(self):
        topo = complete_topology([0, 1, 2])
        vectors = {i: np.full(3, float(i)) for i in range(3)}
        result = neighborhood_average(vectors, topo)
        for node in range(3):
            np.testing.assert_allclose(result[node], np.ones(3))

    def test_neighborhood_average_converges_on_ring(self):
        topo = directed_ring([0, 1, 2, 3], shuffle=False)
        vectors = {i: np.array([float(i)]) for i in range(4)}
        for _ in range(60):
            vectors = neighborhood_average(vectors, topo)
        values = np.array([vectors[i][0] for i in range(4)])
        assert np.ptp(values) < 1e-6  # consensus

    def test_neighborhood_missing_vector_raises(self):
        topo = directed_ring([0, 1], shuffle=False)
        with pytest.raises(ValueError, match="missing"):
            neighborhood_average({0: np.zeros(2)}, topo)


class TestVolume:
    def test_fedavg_server_volume_formula(self):
        # 2 * M * K * epochs / E
        assert fedavg_server_volume(1000, 4, 10, 5) == pytest.approx(
            2 * 1000 * 4 * 10 / 5
        )

    def test_device_volume_formula(self):
        assert device_volume(1000, 4) == 8000

    def test_formula_validation(self):
        with pytest.raises(ValueError):
            fedavg_server_volume(0, 4, 10, 5)
        with pytest.raises(ValueError):
            device_volume(1000, 0)

    def test_accountant_totals(self):
        acc = CommVolumeAccountant()
        acc.record(0.0, 100, "gossip", src=0, dst=1)
        acc.record(1.0, 50, "broadcast", src=0, dst=2)
        acc.record(2.0, 25, "gossip", src=1, dst=0)
        assert acc.total_bytes == 175
        assert acc.bytes_by_kind() == {"gossip": 125, "broadcast": 50}
        assert acc.bytes_by_device() == {0: 150, 1: 25}
        assert "gossip" in acc.summary()

    def test_accountant_rejects_negative(self):
        with pytest.raises(ValueError):
            CommVolumeAccountant().record(0.0, -1, "x")
