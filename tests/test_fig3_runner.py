"""Unit tests for the Fig. 3 runner/formatter (with canned + tiny runs)."""

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, run_fig3
from repro.experiments.fig3 import format_fig3
from repro.metrics import RoundRecord, RunResult


def _canned(scheme, accs):
    result = RunResult(scheme=scheme)
    for index, acc in enumerate(accs):
        result.append(
            RoundRecord(
                round_index=index,
                sim_time=float(index + 1),
                global_epoch=float(index + 1),
                train_loss=1.0 / (index + 1),
                test_loss=0.4,
                test_accuracy=acc,
            )
        )
    return result


class TestFormatFig3:
    def test_three_panels_rendered(self):
        results = {
            "distributed": _canned("distributed", [0.3, 0.6]),
            "hadfl": _canned("hadfl", [0.4, 0.7]),
        }
        text = format_fig3(results, "demo_model")
        assert text.count("Fig3:") == 3
        assert "loss vs epoch" in text
        assert "test accuracy vs epoch" in text
        assert "test accuracy vs time" in text
        assert "demo_model" in text


class TestRunFig3:
    @pytest.fixture(scope="class")
    def tiny_results(self):
        config = ExperimentConfig(
            model="mlp", num_train=160, num_test=80, target_epochs=2.0, seed=8
        )
        return run_fig3(config, include_worst_case=True)

    def test_all_series_present(self, tiny_results):
        assert set(tiny_results) == {
            "distributed",
            "decentralized_fedavg",
            "hadfl",
            "hadfl_worst",
        }

    def test_series_nonempty_and_formattable(self, tiny_results):
        for result in tiny_results.values():
            assert len(result.rounds) >= 1
            assert result.test_accuracies().size >= 1
        assert "Fig3" in format_fig3(tiny_results, "mlp")

    def test_without_worst_case(self):
        config = ExperimentConfig(
            model="mlp", num_train=160, num_test=80, target_epochs=1.0, seed=8
        )
        results = run_fig3(config, include_worst_case=False)
        assert "hadfl_worst" not in results
