"""Virtual populations: lazy clusters, arena pooling, availability.

The contract under test is *bitwise equivalence*: a lazily-materialised
cluster must be indistinguishable from the eager one on a fixed seed, a
recycled arena block must be indistinguishable from a fresh one, and a
device whose state round-trips through the population ledger must
continue its local trajectory exactly.
"""

import numpy as np
import pytest

from repro.baselines import DecentralizedFedAvgTrainer
from repro.core import HADFLTrainer
from repro.core.selection import (
    gaussian_quartile_probabilities,
    gaussian_quartile_scores,
    sample_participants,
)
from repro.data.partition import (
    DirichletShardSpec,
    IIDShardSpec,
    SampledShardSpec,
    partition_dirichlet,
    partition_iid,
)
from repro.experiments import ExperimentConfig, PopulationConfig, run_population
from repro.experiments.population import make_population
from repro.sim.failures import (
    DiurnalAvailability,
    FailureInjector,
    FailureWindow,
    TraceAvailability,
    make_availability_model,
)
from repro.sim.population import PopulationSpecs, PopulationTrainer


def _config(**overrides):
    base = dict(
        model="mlp",
        power_ratio=(3, 3, 1, 1),
        num_train=320,
        num_test=160,
        image_size=8,
        target_epochs=4.0,
        seed=7,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def _pop_config(**overrides):
    base = dict(
        population=200,
        participants=8,
        rounds=3,
        round_window=0.8,
        shard_size=48,
        num_train=256,
        num_test=96,
        seed=11,
    )
    base.update(overrides)
    return PopulationConfig(**base)


def _assert_runs_bitwise_equal(a, b):
    assert len(a.rounds) == len(b.rounds)
    for ra, rb in zip(a.rounds, b.rounds):
        assert ra.train_loss == rb.train_loss
        assert ra.test_accuracy == rb.test_accuracy
        assert ra.comm_bytes == rb.comm_bytes
        assert ra.selected == rb.selected
        assert ra.versions == rb.versions
        assert ra.sim_time == rb.sim_time


# ---------------------------------------------------------------------- #
class TestShardSpecs:
    def test_iid_spec_matches_partition(self):
        spec = IIDShardSpec(100, 4, rng=np.random.default_rng(3))
        shards = partition_iid(100, 4, rng=np.random.default_rng(3))
        for d in range(4):
            np.testing.assert_array_equal(spec.shard(d), shards[d])

    def test_dirichlet_spec_matches_partition(self):
        labels = np.random.default_rng(0).integers(0, 10, size=400)
        spec = DirichletShardSpec(
            labels, 8, alpha=0.5, rng=np.random.default_rng(5)
        )
        shards = partition_dirichlet(
            labels, 8, alpha=0.5, rng=np.random.default_rng(5)
        )
        for d in range(8):
            np.testing.assert_array_equal(spec.shard(d), shards[d])

    def test_dirichlet_retry_path_matches_partition(self):
        # alpha tiny + min_size forces at least one retry on this seed.
        labels = np.random.default_rng(1).integers(0, 10, size=400)
        spec = DirichletShardSpec(
            labels, 8, alpha=0.05, rng=np.random.default_rng(9), min_size=8
        )
        shards = partition_dirichlet(
            labels, 8, alpha=0.05, rng=np.random.default_rng(9), min_size=8
        )
        for d in range(8):
            np.testing.assert_array_equal(spec.shard(d), shards[d])

    def test_sampled_spec_deterministic_and_lazy(self):
        spec = SampledShardSpec(10_000, 1_000_000, shard_size=32, seed=4)
        again = SampledShardSpec(10_000, 1_000_000, shard_size=32, seed=4)
        shard = spec.shard(123_456)
        np.testing.assert_array_equal(shard, again.shard(123_456))
        assert shard.size == 32
        assert np.all(shard >= 0) and np.all(shard < 10_000)
        assert np.unique(shard).size == 32  # without replacement
        # Different devices draw different shards.
        assert not np.array_equal(shard, spec.shard(123_457))

    def test_sampled_spec_shard_sizes(self):
        spec = SampledShardSpec(100, 10, shard_size=16, seed=0)
        assert list(spec.shard_sizes()) == [16] * 10


# ---------------------------------------------------------------------- #
class TestVectorisedSelection:
    def test_scores_match_dict_probabilities(self):
        rng = np.random.default_rng(2)
        versions = {i: int(v) for i, v in enumerate(rng.integers(0, 50, 40))}
        probs = gaussian_quartile_probabilities(versions)
        values = np.array([versions[i] for i in sorted(versions)], dtype=float)
        scores = gaussian_quartile_scores(values)
        for i in sorted(versions):
            assert probs[i] == scores[i]

    def test_degenerate_spread_is_uniform(self):
        scores = gaussian_quartile_scores(np.full(7, 3.0))
        np.testing.assert_array_equal(scores, np.full(7, 1.0 / 7))

    def test_sample_participants_deterministic(self):
        values = np.random.default_rng(0).integers(0, 30, 1000).astype(float)
        a = sample_participants(values, 20, np.random.default_rng(6))
        b = sample_participants(values, 20, np.random.default_rng(6))
        np.testing.assert_array_equal(a, b)
        assert a.size == 20 == np.unique(a).size
        assert np.all(np.diff(a) > 0)  # sorted, unique

    def test_sample_participants_count_clamped(self):
        values = np.arange(5, dtype=float)
        picked = sample_participants(values, 10, np.random.default_rng(0))
        np.testing.assert_array_equal(picked, np.arange(5))


# ---------------------------------------------------------------------- #
class TestAvailability:
    def test_diurnal_deterministic_and_subset_invariant(self):
        model = DiurnalAvailability(seed=3)
        ids = np.arange(10_000)
        mask = model.available_mask(ids, 12.5)
        np.testing.assert_array_equal(
            mask, DiurnalAvailability(seed=3).available_mask(ids, 12.5)
        )
        # A device's fate does not depend on who else is being asked.
        subset = ids[::7]
        np.testing.assert_array_equal(
            model.available_mask(subset, 12.5), mask[::7]
        )
        assert model.is_available(42, 12.5) == bool(mask[42])

    def test_diurnal_fraction_tracks_cycle(self):
        model = DiurnalAvailability(
            period=24.0, low=0.1, high=0.9, phase_spread=0.0, seed=1
        )
        ids = np.arange(20_000)
        peak = model.available_mask(ids, 6.0).mean()  # sin peak at period/4
        trough = model.available_mask(ids, 18.0).mean()
        assert peak == pytest.approx(0.9, abs=0.02)
        assert trough == pytest.approx(0.1, abs=0.02)

    def test_trace_interpolates(self):
        model = TraceAvailability([0.0, 10.0], [0.0, 1.0], seed=2)
        ids = np.arange(20_000)
        assert model.available_mask(ids, 0.0).mean() == pytest.approx(0.0, abs=0.01)
        assert model.available_mask(ids, 5.0).mean() == pytest.approx(0.5, abs=0.02)
        assert model.available_mask(ids, 10.0).mean() == pytest.approx(1.0, abs=0.01)

    def test_factory_and_validation(self):
        assert make_availability_model("always").fraction(0.0) == 1.0
        assert isinstance(
            make_availability_model("diurnal", seed=1, low=0.2),
            DiurnalAvailability,
        )
        with pytest.raises(KeyError):
            make_availability_model("nope")
        with pytest.raises(ValueError):
            DiurnalAvailability(low=0.9, high=0.1)
        with pytest.raises(ValueError):
            TraceAvailability([0.0], [1.0])

    def test_alive_mask_matches_is_alive(self):
        injector = FailureInjector()
        injector.add_window(FailureWindow(3, 1.0, 2.0))
        ids = np.arange(6)
        mask = injector.alive_mask(ids, 1.5)
        for d in ids:
            assert mask[d] == injector.is_alive(int(d), 1.5)


# ---------------------------------------------------------------------- #
class TestLazyClusterParity:
    """A lazy cluster is bitwise-indistinguishable from the eager one."""

    def _final_params(self, cluster):
        return [np.array(d.get_params_view(), copy=True) for d in cluster.devices]

    def test_hadfl_eager_vs_lazy_bitwise(self):
        runs = {}
        params = {}
        for mode in ("eager", "lazy"):
            config = _config(materialisation=mode)
            cluster = config.make_cluster()
            trainer = HADFLTrainer(cluster, params=config.hadfl_params())
            runs[mode] = trainer.run(target_epochs=config.target_epochs)
            params[mode] = self._final_params(cluster)
        _assert_runs_bitwise_equal(runs["eager"], runs["lazy"])
        for pe, pl in zip(params["eager"], params["lazy"]):
            np.testing.assert_array_equal(pe, pl)

    def test_fedavg_eager_vs_lazy_bitwise(self):
        runs = {}
        params = {}
        opt_state = {}
        for mode in ("eager", "lazy"):
            config = _config(materialisation=mode, partition="dirichlet")
            cluster = config.make_cluster()
            trainer = DecentralizedFedAvgTrainer(cluster, seed=config.seed)
            runs[mode] = trainer.run(target_epochs=3.0)
            params[mode] = self._final_params(cluster)
            opt_state[mode] = [
                [np.array(v, copy=True) for v in d.optimizer.flat_state()]
                for d in cluster.devices
            ]
        _assert_runs_bitwise_equal(runs["eager"], runs["lazy"])
        for pe, pl in zip(params["eager"], params["lazy"]):
            np.testing.assert_array_equal(pe, pl)
        for se, sl in zip(opt_state["eager"], opt_state["lazy"]):
            for ve, vl in zip(se, sl):
                np.testing.assert_array_equal(ve, vl)

    def test_lazy_materialises_on_demand(self):
        config = _config(materialisation="lazy")
        cluster = config.make_cluster()
        assert cluster.materialised_count == 0
        cluster.device_by_id(2)
        assert cluster.materialised_count == 1
        assert len(cluster.devices) == 4  # length never forces a build
        assert cluster.materialised_count == 1
        assert cluster.mean_local_version() == 0.0

    def test_invalid_materialisation_rejected(self):
        with pytest.raises(ValueError, match="materialisation"):
            _config(materialisation="teleport").make_cluster()


# ---------------------------------------------------------------------- #
class TestArenaPool:
    def _population(self, **overrides):
        return make_population(_pop_config(**overrides))

    def test_recycled_block_bitwise_clean(self):
        pop = self._population()
        device = pop.materialise(17)
        block = pop._blocks[17]
        rng_states_before = list(block.initial_module_rng_states)
        device.train_steps(4, start_time=0.0)
        assert device.version == 4
        pop.release(17)
        # The freed block is scrubbed back to template state, bitwise.
        np.testing.assert_array_equal(block.arena.flat, pop._initial_payload)
        assert not np.any(block.arena.grad_flat)
        for vec in block.optimizer.flat_state():
            assert not np.any(vec)
        assert dict(block.optimizer.scalar_state()) == block.initial_scalars
        assert [
            r.bit_generator.state for r in block.module_rngs()
        ] == rng_states_before

    def test_pool_reuses_blocks(self):
        pop = self._population()
        pop.materialise(0)
        pop.release(0)
        first = pop.pool.stats()
        assert first == {
            "created": 1, "in_use": 0, "recycled": 0, "max_resident": 1,
        }
        pop.materialise(1)
        assert pop.pool.stats()["recycled"] == 1
        assert pop.pool.stats()["created"] == 1

    def test_pool_capacity_enforced(self):
        pop = self._population(pool_capacity=2)
        pop.materialise(0)
        pop.materialise(1)
        with pytest.raises(RuntimeError, match="pool exhausted"):
            pop.materialise(2)
        pop.release(0)
        pop.materialise(2)  # freed slot is reusable

    def test_ledger_roundtrip_continues_trajectory(self):
        # Train a device across a release/re-materialise cycle; its
        # trajectory must match one trained without interruption.
        pop_a = self._population()
        pop_b = self._population()
        mid = np.sin(np.arange(pop_a.initial_params.size)) * 0.01

        dev_a = pop_a.materialise(9)
        r1a = dev_a.train_steps(3, start_time=0.0)
        pop_a.release(9)
        dev_a = pop_a.materialise(9)  # state restored from the ledger
        dev_a.set_params(pop_a.initial_params + mid)
        r2a = dev_a.train_steps(3, start_time=0.0)

        dev_b = pop_b.materialise(9)
        r1b = dev_b.train_steps(3, start_time=0.0)
        dev_b.set_params(pop_b.initial_params + mid)
        r2b = dev_b.train_steps(3, start_time=0.0)

        assert r1a.losses == r1b.losses
        assert r2a.losses == r2b.losses
        assert dev_a.version == dev_b.version == 6
        np.testing.assert_array_equal(
            dev_a.get_params_view(), dev_b.get_params_view()
        )
        for va, vb in zip(
            dev_a.optimizer.flat_state(), dev_b.optimizer.flat_state()
        ):
            np.testing.assert_array_equal(va, vb)

    def test_versions_persist_without_state(self):
        pop = self._population(persist_state=False)
        device = pop.materialise(4)
        device.train_steps(5, start_time=0.0)
        pop.release(4)
        assert pop.versions[4] == 5
        # Without persistence the device restarts from the template.
        assert pop.materialise(4).version == 0


# ---------------------------------------------------------------------- #
class TestPopulationSpecs:
    def test_power_levels_cycle(self):
        specs = PopulationSpecs.sampled(
            size=10, num_samples=100, shard_size=8,
            power_levels=(3.0, 1.0), seed=0,
        )
        np.testing.assert_array_equal(
            specs.powers(np.arange(6)), [3.0, 1.0, 3.0, 1.0, 3.0, 1.0]
        )
        # Fastest-native normalisation: the strongest level steps at
        # base_step_time, matching specs_from_power_ratio.
        fast = specs.device_spec(0)
        slow = specs.device_spec(1)
        assert fast.base_step_time / fast.power == pytest.approx(0.1)
        assert slow.base_step_time / slow.power == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            PopulationSpecs.sampled(size=0, num_samples=10, shard_size=2)
        with pytest.raises(ValueError, match="covers"):
            PopulationSpecs(
                5, SampledShardSpec(100, 6, shard_size=4, seed=0)
            )
        specs = PopulationSpecs.sampled(size=4, num_samples=10, shard_size=2)
        with pytest.raises(IndexError):
            specs.device_spec(4)


# ---------------------------------------------------------------------- #
class TestPopulationTrainer:
    def test_run_deterministic_bitwise(self):
        first = run_population(_pop_config())
        second = run_population(_pop_config())
        _assert_runs_bitwise_equal(first, second)
        assert first.config["accounting"] == second.config["accounting"]

    def test_memory_bounded_by_participants(self):
        result = run_population(_pop_config(rounds=4))
        pool = result.config["pool"]
        assert pool["max_resident"] <= 8
        assert pool["in_use"] == 0
        # Across 4 rounds of 8 participants, blocks were recycled.
        assert pool["recycled"] >= 8

    def test_round_telemetry(self):
        result = run_population(
            _pop_config(availability="diurnal", eval_every=2)
        )
        assert result.scheme == "population_hadfl"
        for record in result.rounds:
            detail = record.detail
            assert 0.0 <= detail["churn"] <= 1.0
            assert 0.0 < detail["available_fraction"] <= 1.0
            assert detail["hotspot_bytes"] > 0
            straggler = detail["straggler"]
            assert straggler["p50"] <= straggler["p90"] <= straggler["p99"]
            assert len(record.selected) == 8
        assert result.rounds[0].detail["churn"] == 1.0
        assert result.rounds[0].test_accuracy is not None
        assert result.rounds[-1].test_accuracy is not None

    def test_training_improves(self):
        result = run_population(_pop_config(rounds=6, eval_every=5))
        assert result.rounds[-1].test_accuracy > result.rounds[0].test_accuracy
        losses = [r.train_loss for r in result.rounds]
        assert losses[-1] < losses[0]

    def test_nobody_available_skips_round(self):
        config = _pop_config(
            availability="diurnal",
            availability_kwargs={"low": 0.0, "high": 0.0},
        )
        result = run_population(config)
        assert all(r.detail.get("skipped") for r in result.rounds)
        assert all(not r.selected for r in result.rounds)

    def test_single_participant_round(self):
        result = run_population(_pop_config(participants=1, rounds=2))
        assert all(len(r.selected) == 1 for r in result.rounds)

    def test_comm_accounting_conserved(self):
        result = run_population(_pop_config())
        accounting = result.config["accounting"]
        per_round = sum(r.comm_bytes for r in result.rounds)
        assert per_round == accounting["total_bytes"]
        assert set(accounting["bytes_by_kind"]) == {
            "participant_dispatch", "partial_sync",
        }

    def test_process_executor_rejected(self):
        pop = make_population(_pop_config())
        with pytest.raises(ValueError, match="process executor"):
            PopulationTrainer(pop, participants=4, executor="process")

    def test_exact_and_aggregate_accounting_agree(self):
        results = {}
        received = {}
        for mode in ("exact", "aggregate"):
            pop = make_population(_pop_config())
            trainer = PopulationTrainer(
                pop, participants=8, round_window=0.8,
                seed=11, accounting=mode,
            )
            results[mode] = trainer.run(3)
            received[mode] = trainer.volume.bytes_received_by_device()
            if mode == "exact":
                assert trainer.volume.records()
            else:
                assert not trainer.volume.records()
            trainer.close()
        _assert_runs_bitwise_equal(results["exact"], results["aggregate"])
        exact = dict(results["exact"].config["accounting"])
        aggregate = dict(results["aggregate"].config["accounting"])
        assert exact == aggregate
        assert received["exact"] == received["aggregate"]
