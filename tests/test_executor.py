"""Executor backends: bitwise parity with serial execution.

The contract (see ``repro.sim.executor``): running a round's local
bursts through any backend leaves the live devices — parameters, losses,
versions, optimizer state, RNG streams — in exactly the state serial
execution produces on the same seeds.  These tests pin that bitwise, for
plain runs, jittered devices, mid-window failures, momentum state, and
dropout streams.
"""

import os

import numpy as np
import pytest

from repro.core import HADFLTrainer
from repro.experiments import ExperimentConfig, run_scheme
from repro.nn.layers import Dropout, Flatten, Linear, ReLU, Sequential
from repro.parallel import (
    LocalTrainTask,
    device_state_scalars,
    export_state_into,
    import_state_from,
)
from repro.sim import (
    FailureInjector,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)

BACKENDS = ("serial", "thread", "process")


def _config(**overrides):
    defaults = dict(
        model="mlp",
        num_train=256,
        num_test=128,
        image_size=8,
        target_epochs=6.0,
        seed=11,
        momentum=0.9,  # exercises the optimizer flat-state round-trip
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def _run_hadfl(config, failure_injector=None):
    """Run HADFL returning (result, cluster, trainer) for state inspection."""
    cluster = config.make_cluster(failure_injector=failure_injector)
    trainer = HADFLTrainer(cluster, params=config.hadfl_params(), seed=config.seed)
    result = trainer.run(target_epochs=config.target_epochs)
    cluster.close()
    return result, cluster, trainer


def _assert_bitwise_equal(ref, other, backend):
    ref_result, ref_cluster, ref_trainer = ref
    result, cluster, trainer = other
    assert len(ref_result.rounds) == len(result.rounds), backend
    np.testing.assert_array_equal(
        ref_result.train_losses(), result.train_losses(), err_msg=backend
    )
    np.testing.assert_array_equal(
        ref_result.test_accuracies(), result.test_accuracies(), err_msg=backend
    )
    np.testing.assert_array_equal(
        ref_result.times(), result.times(), err_msg=backend
    )
    for ra, rb in zip(ref_result.rounds, result.rounds):
        assert ra.selected == rb.selected, backend
        assert ra.versions == rb.versions, backend
        assert ra.comm_bytes == rb.comm_bytes, backend
    np.testing.assert_array_equal(
        ref_trainer.global_params, trainer.global_params, err_msg=backend
    )
    for ref_device, device in zip(ref_cluster.devices, cluster.devices):
        assert ref_device.version == device.version, backend
        np.testing.assert_array_equal(
            ref_device.get_params(), device.get_params(), err_msg=backend
        )
        for ref_vec, vec in zip(
            ref_device.optimizer.flat_state(), device.optimizer.flat_state()
        ):
            np.testing.assert_array_equal(ref_vec, vec, err_msg=backend)
        # The grad arena ships with the slot: post-burst gradient state
        # (the last local step's accumulation) matches serial bitwise.
        np.testing.assert_array_equal(
            ref_device.arena.grad_flat, device.arena.grad_flat, err_msg=backend
        )
        # The RNG streams advanced identically: the next draws agree.
        assert (
            ref_device._rng.bit_generator.state == device._rng.bit_generator.state
        ), backend


class TestHADFLParity:
    def test_fixed_seed_run_identical_across_backends(self):
        ref = _run_hadfl(_config(executor="serial"))
        assert len(ref[0].rounds) >= 2
        for backend in ("thread", "process"):
            other = _run_hadfl(_config(executor=backend))
            _assert_bitwise_equal(ref, other, backend)

    def test_jittered_devices_identical_across_backends(self):
        """Jitter draws one lognormal per step (plus the final probe of
        each deadline burst) from the device RNG — the stream must
        round-trip through the workers exactly."""
        ref = _run_hadfl(_config(executor="serial", jitter=0.2, seed=5))
        for backend in ("thread", "process"):
            other = _run_hadfl(_config(executor=backend, jitter=0.2, seed=5))
            _assert_bitwise_equal(ref, other, backend)

    def test_mid_window_failure_identical_across_backends(self):
        """A device dropping mid-window truncates its burst via the
        effective deadline; the truncated burst must ship through the
        parallel backends bit-for-bit."""

        def injector():
            failures = FailureInjector()
            failures.fail(0, down_at=3.0, up_at=30.0)
            return failures

        config = lambda backend: _config(  # noqa: E731
            executor=backend, target_epochs=4.0, seed=3, num_selected=2
        )
        ref = _run_hadfl(config("serial"), failure_injector=injector())
        # The failure actually truncated device 0's burst: it finished
        # round 1 with fewer steps than its equal-power peer.
        last = ref[0].rounds[-1].versions
        assert last[0] < last[1]
        for backend in ("thread", "process"):
            other = _run_hadfl(config(backend), failure_injector=injector())
            _assert_bitwise_equal(ref, other, backend)

    def test_params_executor_overrides_cluster(self):
        config = _config()
        cluster = config.make_cluster()
        params = config.hadfl_params()
        params.executor = "thread"
        params.executor_workers = 2
        trainer = HADFLTrainer(cluster, params=params, seed=config.seed)
        assert isinstance(trainer.executor, ThreadExecutor)
        assert trainer.executor is not cluster.executor
        result = trainer.run(target_epochs=2.0)
        trainer.close()
        cluster.close()
        ref = _run_hadfl(_config(target_epochs=2.0))
        np.testing.assert_array_equal(ref[0].train_losses(), result.train_losses())


class TestBaselineParity:
    @pytest.mark.parametrize("scheme", ("decentralized_fedavg", "distributed"))
    def test_fixed_seed_baselines_identical(self, scheme):
        runs = {
            backend: run_scheme(scheme, _config(executor=backend, target_epochs=2.0))
            for backend in BACKENDS
        }
        ref = runs["serial"]
        for backend in ("thread", "process"):
            np.testing.assert_array_equal(
                ref.train_losses(), runs[backend].train_losses(), err_msg=backend
            )
            np.testing.assert_array_equal(
                ref.times(), runs[backend].times(), err_msg=backend
            )


class TestDropoutParity:
    def test_dropout_streams_round_trip(self):
        """Per-layer forward-time RNGs (dropout masks) must travel with
        the device state, or parallel trajectories silently diverge."""

        def factory(rng):
            return Sequential(
                Flatten(),
                Linear(3 * 8 * 8, 32, rng=rng),
                ReLU(),
                Dropout(0.4, rng=np.random.default_rng(rng.integers(2**31))),
                Linear(32, 10, rng=rng),
            )

        def build(executor):
            config = _config(executor=executor, target_epochs=2.0)
            train, test = config.make_data()
            from repro.sim import SimulatedCluster

            return SimulatedCluster(
                model_factory=factory,
                train_set=train,
                test_set=test,
                specs=config.make_specs(),
                batch_size=config.batch_size,
                lr_schedule=config.make_lr_schedule(),
                network=config.make_network(),
                seed=config.seed,
                executor=executor,
            )

        clusters = {backend: build(backend) for backend in BACKENDS}
        for cluster in clusters.values():
            tasks = [
                LocalTrainTask(device_id=d.device_id, num_steps=6, start_time=0.0)
                for d in cluster.devices
            ]
            cluster.run_local_tasks(tasks)
            cluster.close()
        ref = clusters["serial"]
        for backend in ("thread", "process"):
            for ref_device, device in zip(ref.devices, clusters[backend].devices):
                np.testing.assert_array_equal(
                    ref_device.get_params(), device.get_params(), err_msg=backend
                )


class TestStateRoundTrip:
    def test_cycler_state_replay_is_bitwise(self):
        config = _config()
        cluster = config.make_cluster()
        device = cluster.devices[0]
        state = device.cycler.get_state()
        first = [device.cycler.next_batch()[0] for _ in range(12)]
        device.cycler.set_state(state)
        second = [device.cycler.next_batch()[0] for _ in range(12)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_device_train_state_replay_is_bitwise(self):
        config = _config(jitter=0.3)
        ref_cluster = config.make_cluster()
        replay_cluster = config.make_cluster()
        device = ref_cluster.devices[0]
        replica = replay_cluster.devices[0]

        # Advance the reference device, snapshot, advance both further.
        device.train_steps(4, start_time=0.0)
        snapshot = device.export_train_state()
        params = device.get_params()
        flat = [vec.copy() for vec in device.optimizer.flat_state()]
        burst_a = device.train_steps(5, start_time=1.0)

        replica.import_train_state(snapshot)
        replica.set_params(params)
        for vec, saved in zip(replica.optimizer.flat_state(), flat):
            vec[:] = saved
        burst_b = replica.train_steps(5, start_time=1.0)

        assert burst_a.losses == burst_b.losses
        assert burst_a.elapsed == burst_b.elapsed
        np.testing.assert_array_equal(device.get_params(), replica.get_params())
        assert device.version == replica.version

    def test_flat_state_shipping_round_trip(self):
        config = _config()
        cluster = config.make_cluster()
        device = cluster.devices[0]
        device.train_steps(3, start_time=0.0)
        assert device.arena.grad_flat.any()  # the burst left real gradients
        slot = np.empty(device_state_scalars(device), dtype=np.float64)
        assert slot.size == (
            device.arena.num_scalars
            + device.arena.grad_flat.size
            + sum(v.size for v in device.optimizer.flat_state())
        )
        export_state_into(device, slot)
        params = device.get_params()
        grads = device.arena.grad_flat.copy()
        momentum = device.optimizer.flat_state()[0].copy()
        device.set_params(np.zeros_like(params))
        device.arena.grad_flat[:] = -2.0
        device.optimizer.flat_state()[0][:] = -1.0
        import_state_from(device, slot)
        np.testing.assert_array_equal(device.get_params(), params)
        np.testing.assert_array_equal(device.arena.grad_flat, grads)
        np.testing.assert_array_equal(device.optimizer.flat_state()[0], momentum)


class TestExecutorInterface:
    def test_task_validation(self):
        with pytest.raises(ValueError):
            LocalTrainTask(device_id=0)
        with pytest.raises(ValueError):
            LocalTrainTask(device_id=0, num_steps=1, deadline=1.0)
        with pytest.raises(ValueError):
            LocalTrainTask(device_id=0, num_steps=-1)

    def test_make_executor_resolution(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("thread", 2), ThreadExecutor)
        assert isinstance(make_executor("process"), ProcessExecutor)
        instance = ThreadExecutor(3)
        assert make_executor(instance) is instance
        with pytest.raises(ValueError):
            make_executor("gpu")

    def test_repro_parallel_imports_standalone(self):
        """`import repro.parallel` must work as the first repro import —
        regression test for the executor/parallel import cycle."""
        import subprocess
        import sys
        from pathlib import Path

        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ, PYTHONPATH=src)
        proc = subprocess.run(
            [sys.executable, "-c", "import repro.parallel"],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_empty_batch(self):
        config = _config(executor="thread")
        cluster = config.make_cluster()
        assert cluster.run_local_tasks([]) == {}
        cluster.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_duplicate_device_tasks_rejected(self, backend):
        """Two bursts on one replica have no serial counterpart — every
        backend must reject them the same way."""
        config = _config(executor=backend)
        cluster = config.make_cluster()
        tasks = [
            LocalTrainTask(device_id=0, num_steps=1, start_time=0.0),
            LocalTrainTask(device_id=0, num_steps=1, start_time=0.0),
        ]
        with pytest.raises(ValueError):
            cluster.run_local_tasks(tasks)
        cluster.close()

    def test_close_is_idempotent_and_pool_rebuilds(self):
        config = _config(executor="process")
        cluster = config.make_cluster()
        tasks = [
            LocalTrainTask(device_id=d.device_id, num_steps=1, start_time=0.0)
            for d in cluster.devices
        ]
        first = cluster.run_local_tasks(tasks)
        cluster.close()
        cluster.close()
        second = cluster.run_local_tasks(tasks)
        assert set(first) == set(second)
        cluster.close()
