"""Unit tests for datasets, partitioners, and loaders."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    BatchCycler,
    DataLoader,
    Subset,
    SyntheticImageClassification,
    make_gaussian_vectors,
    make_two_spirals,
    partition_dirichlet,
    partition_iid,
    partition_proportional,
    partition_shards,
    synthetic_cifar10,
    train_test_split,
)

RNG = np.random.default_rng(5)


class TestArrayDataset:
    def test_len_and_getitem(self):
        ds = ArrayDataset(np.arange(10).reshape(5, 2), np.arange(5))
        assert len(ds) == 5
        x, y = ds[2]
        np.testing.assert_array_equal(x, [4, 5])
        assert y == 2

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            ArrayDataset(np.zeros((3, 2)), np.zeros(4))

    def test_num_classes(self):
        ds = ArrayDataset(np.zeros((4, 1)), np.array([0, 2, 1, 2]))
        assert ds.num_classes() == 3


class TestSubset:
    def test_view_semantics(self):
        base = ArrayDataset(np.arange(20).reshape(10, 2), np.arange(10))
        sub = Subset(base, [1, 3, 5])
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.labels, [1, 3, 5])
        np.testing.assert_array_equal(sub.features[1], base.features[3])

    def test_out_of_range_raises(self):
        base = ArrayDataset(np.zeros((3, 1)), np.zeros(3))
        with pytest.raises(IndexError):
            Subset(base, [5])


class TestTrainTestSplit:
    def test_disjoint_cover(self):
        ds = ArrayDataset(np.zeros((100, 1)), np.zeros(100))
        train, test = train_test_split(ds, 0.25, rng=np.random.default_rng(0))
        assert len(train) == 75 and len(test) == 25
        combined = np.concatenate([train.indices, test.indices])
        assert len(np.unique(combined)) == 100

    def test_invalid_fraction(self):
        ds = ArrayDataset(np.zeros((10, 1)), np.zeros(10))
        with pytest.raises(ValueError):
            train_test_split(ds, 1.5)


class TestSyntheticImages:
    def test_shapes(self):
        gen = SyntheticImageClassification(
            num_classes=4, num_train=40, num_test=12, image_size=8, seed=1
        )
        assert gen.train.features.shape == (40, 3, 8, 8)
        assert gen.test.features.shape == (12, 3, 8, 8)
        assert gen.templates.shape == (4, 3, 8, 8)

    def test_deterministic_given_seed(self):
        a = SyntheticImageClassification(num_train=30, num_test=10, image_size=8, seed=7)
        b = SyntheticImageClassification(num_train=30, num_test=10, image_size=8, seed=7)
        np.testing.assert_array_equal(a.train.features, b.train.features)
        np.testing.assert_array_equal(a.train.labels, b.train.labels)

    def test_different_seed_differs(self):
        a = SyntheticImageClassification(num_train=30, num_test=10, image_size=8, seed=1)
        b = SyntheticImageClassification(num_train=30, num_test=10, image_size=8, seed=2)
        assert np.abs(a.train.features - b.train.features).max() > 0

    def test_all_classes_represented_in_templates(self):
        gen = SyntheticImageClassification(
            num_classes=3, num_train=60, num_test=30, image_size=8, seed=0
        )
        assert set(np.unique(gen.train.labels)) <= set(range(3))

    def test_noise_controls_difficulty(self):
        """Nearest-template classification must degrade with noise."""

        def nearest_template_accuracy(noise):
            gen = SyntheticImageClassification(
                num_classes=5, num_train=10, num_test=200, image_size=8,
                noise=noise, max_shift=0, seed=3,
            )
            X = gen.test.features.reshape(len(gen.test), -1)
            T = gen.templates.reshape(5, -1)
            pred = np.argmin(
                ((X[:, None, :] - T[None, :, :]) ** 2).sum(-1), axis=1
            )
            return (pred == gen.test.labels).mean()

        assert nearest_template_accuracy(0.1) > nearest_template_accuracy(3.0)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SyntheticImageClassification(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticImageClassification(num_classes=10, num_train=5)

    def test_synthetic_cifar10_convenience(self):
        train, test = synthetic_cifar10(num_train=50, num_test=20, image_size=8)
        assert len(train) == 50 and len(test) == 20
        assert train.num_classes() <= 10


class TestVectorDatasets:
    def test_gaussian_vectors_learnable(self):
        ds = make_gaussian_vectors(num_classes=3, num_samples=300, separation=5.0, seed=0)
        # With large separation, nearest-mean should be nearly perfect.
        means = np.stack([ds.features[ds.labels == c].mean(0) for c in range(3)])
        pred = np.argmin(
            ((ds.features[:, None] - means[None]) ** 2).sum(-1), axis=1
        )
        assert (pred == ds.labels).mean() > 0.95

    def test_two_spirals_balanced(self):
        ds = make_two_spirals(num_samples=200, seed=0)
        assert np.bincount(ds.labels).tolist() == [100, 100]


class TestPartitioners:
    def _assert_disjoint_cover(self, parts, n):
        combined = np.concatenate(parts)
        assert len(combined) == n
        assert len(np.unique(combined)) == n

    def test_iid_cover_and_balance(self):
        parts = partition_iid(103, 4, rng=np.random.default_rng(0))
        self._assert_disjoint_cover(parts, 103)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_proportional_sizes(self):
        parts = partition_proportional(100, [4, 2, 2, 1], rng=np.random.default_rng(0))
        self._assert_disjoint_cover(parts, 100)
        sizes = [len(p) for p in parts]
        assert sizes[0] > sizes[1] >= sizes[3]
        assert sum(sizes) == 100

    def test_proportional_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            partition_proportional(10, [1, 0])

    def test_dirichlet_cover(self):
        labels = np.repeat(np.arange(5), 40)
        parts = partition_dirichlet(labels, 4, alpha=0.5, rng=np.random.default_rng(0))
        self._assert_disjoint_cover(parts, 200)

    def test_dirichlet_skew_increases_with_small_alpha(self):
        labels = np.repeat(np.arange(10), 100)

        def label_entropy(parts):
            entropies = []
            for part in parts:
                counts = np.bincount(labels[part], minlength=10) + 1e-12
                p = counts / counts.sum()
                entropies.append(-(p * np.log(p)).sum())
            return np.mean(entropies)

        skewed = partition_dirichlet(labels, 5, alpha=0.05, rng=np.random.default_rng(1))
        uniform = partition_dirichlet(labels, 5, alpha=100.0, rng=np.random.default_rng(1))
        assert label_entropy(skewed) < label_entropy(uniform)

    def test_dirichlet_min_size_enforced(self):
        labels = np.repeat(np.arange(2), 50)
        parts = partition_dirichlet(
            labels, 4, alpha=0.3, rng=np.random.default_rng(0), min_size=5
        )
        assert min(len(p) for p in parts) >= 5

    def test_dirichlet_invalid_alpha(self):
        with pytest.raises(ValueError):
            partition_dirichlet(np.zeros(10, dtype=int), 2, alpha=0.0)

    def test_shards_cover_and_class_concentration(self):
        labels = np.repeat(np.arange(10), 20)
        parts = partition_shards(labels, 5, shards_per_device=2, rng=np.random.default_rng(0))
        self._assert_disjoint_cover(parts, 200)
        # Each device sees at most ~4 distinct classes (2 shards can span
        # a class boundary each).
        for part in parts:
            assert len(np.unique(labels[part])) <= 4

    def test_shards_too_many_raises(self):
        with pytest.raises(ValueError):
            partition_shards(np.zeros(3, dtype=int), 2, shards_per_device=2)


class TestDataLoader:
    def _dataset(self, n=10):
        return ArrayDataset(np.arange(n * 2).reshape(n, 2), np.arange(n))

    def test_batch_count(self):
        loader = DataLoader(self._dataset(10), batch_size=3, rng=np.random.default_rng(0))
        assert len(loader) == 4
        batches = list(loader)
        assert len(batches) == 4
        assert sum(len(y) for _, y in batches) == 10

    def test_drop_last(self):
        loader = DataLoader(
            self._dataset(10), batch_size=3, drop_last=True, rng=np.random.default_rng(0)
        )
        assert len(loader) == 3
        assert sum(len(y) for _, y in list(loader)) == 9

    def test_no_shuffle_is_ordered(self):
        loader = DataLoader(self._dataset(6), batch_size=2, shuffle=False)
        _, labels = next(iter(loader))
        np.testing.assert_array_equal(labels, [0, 1])

    def test_shuffle_varies_across_epochs(self):
        loader = DataLoader(self._dataset(32), batch_size=32, rng=np.random.default_rng(0))
        first = next(iter(loader))[1]
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)

    def test_epoch_covers_all_samples(self):
        loader = DataLoader(self._dataset(10), batch_size=4, rng=np.random.default_rng(0))
        seen = np.concatenate([y for _, y in loader])
        assert sorted(seen.tolist()) == list(range(10))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            DataLoader(self._dataset(5), batch_size=0)
        with pytest.raises(ValueError):
            DataLoader(ArrayDataset(np.zeros((0, 1)), np.zeros(0)), batch_size=1)


class TestBatchCycler:
    def test_endless_batches(self):
        ds = ArrayDataset(np.arange(12).reshape(6, 2), np.arange(6))
        cycler = BatchCycler(ds, batch_size=4, rng=np.random.default_rng(0))
        for _ in range(10):
            X, y = cycler.next_batch()
            assert len(y) == 4

    def test_epoch_accounting(self):
        ds = ArrayDataset(np.zeros((8, 1)), np.zeros(8))
        cycler = BatchCycler(ds, batch_size=4, rng=np.random.default_rng(0))
        cycler.next_batch()
        cycler.next_batch()
        assert cycler.epochs_consumed == pytest.approx(1.0)
        assert cycler.samples_consumed == 8

    def test_batch_larger_than_dataset_clamped(self):
        ds = ArrayDataset(np.zeros((3, 1)), np.zeros(3))
        cycler = BatchCycler(ds, batch_size=10)
        X, y = cycler.next_batch()
        assert len(y) == 3

    def test_each_epoch_covers_shard(self):
        ds = ArrayDataset(np.arange(8).reshape(8, 1), np.arange(8))
        cycler = BatchCycler(ds, batch_size=4, rng=np.random.default_rng(0))
        seen = np.concatenate([cycler.next_batch()[1] for _ in range(2)])
        assert sorted(seen.tolist()) == list(range(8))

    def test_batches_per_epoch(self):
        ds = ArrayDataset(np.zeros((10, 1)), np.zeros(10))
        assert BatchCycler(ds, batch_size=3).batches_per_epoch == 3
