"""Chaos harness: the simulator must survive *any* fault schedule.

The tentpole guarantees pinned here:

* completion — whatever combination of crash windows, straggler
  windows, lossy links and latency jitter fires, a run finishes and its
  accounting invariant (``sum(round bytes) + initial dispatch ==
  accountant total``) holds, retries/handshakes/re-syncs included;
* determinism — a fixed ``chaos_seed`` reproduces the fault schedule
  and therefore the whole trajectory, bit for bit;
* graceful degradation — moderate fault rates cost a bounded amount of
  accuracy, and the ``sync_failure_policy`` knobs behave as documented;
* revival re-sync — a delta-coded (top-k) wire never ships a delta to a
  device whose reference went stale while it was down: the device is
  densely re-synced (and charged for it) first.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import HADFLTrainer
from repro.core.selection import ForcedWorstSelection
from repro.experiments import ExperimentConfig
from repro.sim import FailureInjector, LinkFaultModel, RetryPolicy


def _config(**overrides):
    defaults = dict(
        model="mlp", num_train=96, num_test=48, image_size=8,
        target_epochs=2.0, seed=3,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def _run(config, **cluster_kwargs):
    selection = cluster_kwargs.pop("selection", None)
    cluster = config.make_cluster(**cluster_kwargs)
    trainer = HADFLTrainer(
        cluster,
        params=config.hadfl_params(),
        selection=selection,
        seed=config.seed,
    )
    result = trainer.run(target_epochs=config.target_epochs)
    return result, trainer


def _assert_invariant(result, trainer):
    by_kind = trainer.volume.bytes_by_kind()
    assert (
        sum(r.comm_bytes for r in result.rounds)
        + by_kind.get("initial_dispatch", 0)
        == trainer.volume.total_bytes
    )


def _trajectory(result, trainer):
    """Everything that must be bitwise reproducible."""
    return (
        trainer.global_params.tobytes(),
        [(r.sim_time, r.comm_bytes, tuple(sorted(r.versions.items())))
         for r in result.rounds],
        result.robustness_summary(),
    )


class TestAnyScheduleCompletes:
    @given(
        chaos_seed=st.integers(min_value=0, max_value=2**31 - 1),
        failure_rate=st.floats(min_value=0.0, max_value=0.15),
        slowdown_rate=st.floats(min_value=0.0, max_value=0.1),
        link_drop=st.floats(min_value=0.0, max_value=0.3),
        link_jitter=st.floats(min_value=0.0, max_value=0.5),
        policy=st.sampled_from(["continue", "skip_round", "fallback_dense"]),
        wire=st.sampled_from(["fp64", "topk0.2"]),
    )
    @settings(max_examples=8, deadline=None)
    def test_run_completes_and_invariant_holds(
        self, chaos_seed, failure_rate, slowdown_rate, link_drop,
        link_jitter, policy, wire,
    ):
        config = _config(
            chaos_seed=chaos_seed,
            failure_rate=failure_rate,
            mean_downtime=1.0,
            slowdown_rate=slowdown_rate,
            slowdown_factor=3.0,
            link_drop_prob=link_drop,
            link_jitter=link_jitter,
            sync_failure_policy=policy,
            wire_dtype=wire,
        )
        result, trainer = _run(config)
        assert len(result.rounds) >= 1
        assert np.all(np.isfinite(trainer.global_params))
        _assert_invariant(result, trainer)
        # Per-round telemetry survives the record layer.
        for record in result.rounds:
            for key in ("retries", "dropped_messages", "bypasses", "resyncs"):
                assert record.detail[key] >= 0


class TestDeterminism:
    def test_fixed_chaos_seed_reproduces_trajectory(self):
        config = _config(
            chaos_seed=11, failure_rate=0.05, mean_downtime=1.0,
            slowdown_rate=0.03, link_drop_prob=0.1, link_jitter=0.2,
            wire_dtype="topk0.2",
        )
        first = _trajectory(*_run(config))
        second = _trajectory(*_run(config))
        assert first == second

    def test_different_chaos_seed_changes_schedule(self):
        kwargs = dict(failure_rate=0.5, mean_downtime=1.0, chaos_horizon=50.0)
        a = _config(chaos_seed=1, **kwargs).make_failure_injector()
        b = _config(chaos_seed=2, **kwargs).make_failure_injector()
        windows = lambda inj: [
            (d, w.down_at, w.up_at)
            for d in range(4) for w in inj.windows_for(d)
        ]
        assert windows(a) != windows(b)

    def test_zero_rate_chaos_is_the_null_config(self):
        """All-zero chaos knobs construct no injector and no link model,
        and the trajectory equals the knob-free config's exactly."""
        chaos = _config(
            failure_rate=0.0, slowdown_rate=0.0,
            link_drop_prob=0.0, link_jitter=0.0,
        )
        assert chaos.make_failure_injector() is None
        assert chaos.make_link_faults() is None
        plain = _config()
        assert _trajectory(*_run(chaos)) == _trajectory(*_run(plain))


class TestGracefulDegradation:
    def test_moderate_faults_cost_bounded_accuracy(self):
        base = dict(num_train=256, num_test=128, target_epochs=4.0, seed=3)
        clean, _ = _run(_config(**base))
        chaotic, trainer = _run(_config(
            **base, chaos_seed=7, failure_rate=0.01, mean_downtime=1.0,
            link_drop_prob=0.05,
        ))
        _assert_invariant(chaotic, trainer)
        assert (
            abs(clean.final_accuracy() - chaotic.final_accuracy()) <= 0.05
        )

    def test_skip_round_rolls_back_then_breaks_livelock(self):
        """With the selected pair's link permanently dark every sync
        fails; under ``skip_round`` the first ``max_round_rollbacks``
        windows are rolled back (version counters frozen), then the
        live-lock guard keeps local progress so the run terminates."""
        config = _config(target_epochs=2.0, sync_failure_policy="skip_round")
        faults = LinkFaultModel()
        for i in range(4):  # every pair dark: no selection can sync
            for j in range(i + 1, 4):
                faults.flap(i, j, down_at=0.0)
        result, trainer = _run(
            config, link_faults=faults,
            retry_policy=RetryPolicy(max_attempts=2, base_timeout=0.01),
        )
        _assert_invariant(result, trainer)
        failed = [r for r in result.rounds if r.detail.get("sync_failed")]
        assert len(failed) == len(result.rounds)
        limit = config.hadfl_params().max_round_rollbacks
        assert len(failed) > limit, "run never outlived the rollback budget"
        frozen = failed[0].versions
        for record in failed[:limit]:
            assert record.versions == frozen  # rolled back
        assert result.rounds[-1].versions != frozen  # guard kicked in
        assert result.total_epochs >= config.target_epochs

    def test_continue_keeps_training_through_failures(self):
        config = _config(target_epochs=3.0, sync_failure_policy="continue")
        faults = LinkFaultModel()
        faults.flap(2, 3, down_at=0.0)
        result, trainer = _run(
            config, link_faults=faults,
            retry_policy=RetryPolicy(max_attempts=2, base_timeout=0.01),
            selection=ForcedWorstSelection(),
        )
        _assert_invariant(result, trainer)
        assert result.rounds[-1].versions != result.rounds[0].versions

    def test_fallback_dense_redispatches_the_model(self):
        config = _config(
            target_epochs=3.0, sync_failure_policy="fallback_dense",
        )
        faults = LinkFaultModel()
        faults.flap(2, 3, down_at=0.0)
        result, trainer = _run(
            config, link_faults=faults,
            retry_policy=RetryPolicy(max_attempts=2, base_timeout=0.01),
            selection=ForcedWorstSelection(),
        )
        _assert_invariant(result, trainer)
        by_kind = trainer.volume.bytes_by_kind()
        assert by_kind.get("fallback_dense", 0) > 0
        # Dense dispatch is priced full-width: a multiple of 8 B/scalar.
        n = trainer.global_params.size
        assert by_kind["fallback_dense"] % (n * 8) == 0


class TestRevivalResync:
    def _probe_round_times(self, config):
        result, _ = _run(config)
        assert len(result.rounds) >= 2
        return [r.sim_time for r in result.rounds]

    def test_topk_revived_device_densely_resynced_before_mixing(self):
        """Device 0 sleeps through round 0's broadcast (its delta
        reference goes stale) and revives before round 1: the trainer
        must charge a full-width ``resync`` for it before any further
        delta-coded traffic reaches it."""
        config = _config(
            num_train=192, num_test=64, target_epochs=8.0,
            wire_dtype="topk0.2",
        )
        times = self._probe_round_times(config)
        t0, t1 = times[0], times[1]
        injector = FailureInjector()
        injector.fail(0, down_at=t0 - 1e-6, up_at=t0 + 0.5 * (t1 - t0))
        result, trainer = _run(
            config, failure_injector=injector,
            selection=ForcedWorstSelection(),  # 0 is never selected
        )
        _assert_invariant(result, trainer)
        records = trainer.volume.records()
        resyncs = [r for r in records if r.kind == "resync" and r.dst == 0]
        assert resyncs, "revived device was never re-synced"
        n = trainer.global_params.size
        for record in resyncs:
            assert record.nbytes == n * 8  # full-width, not top-k priced
        # The re-sync precedes the next delta-coded broadcast to device 0.
        first_resync = next(
            i for i, r in enumerate(records)
            if r.kind == "resync" and r.dst == 0
        )
        later_broadcasts = [
            i for i, r in enumerate(records)
            if r.kind == "broadcast" and r.dst == 0 and r.time > t0
        ]
        assert later_broadcasts and min(later_broadcasts) > first_resync
        assert sum(r.detail["resyncs"] for r in result.rounds) >= 1

    def test_lossless_wire_needs_no_resync(self):
        """fp64 ships absolute parameters — a stale reference is
        harmless, so revival must not charge re-sync traffic."""
        config = _config(
            num_train=192, num_test=64, target_epochs=8.0, wire_dtype="fp64",
        )
        times = self._probe_round_times(config)
        t0, t1 = times[0], times[1]
        injector = FailureInjector()
        injector.fail(0, down_at=t0 - 1e-6, up_at=t0 + 0.5 * (t1 - t0))
        result, trainer = _run(
            config, failure_injector=injector,
            selection=ForcedWorstSelection(),
        )
        _assert_invariant(result, trainer)
        assert "resync" not in trainer.volume.bytes_by_kind()


class TestTelemetryRoundtrip:
    def test_robustness_counters_survive_json_roundtrip(self, tmp_path):
        """Per-round chaos telemetry must survive ``to_dict`` →
        ``io.save_result`` → ``io.load_result`` intact."""
        from repro import io

        config = _config(
            chaos_seed=11, failure_rate=0.05, mean_downtime=1.0,
            link_drop_prob=0.1, wire_dtype="topk0.2",
        )
        result, trainer = _run(config)
        loaded = io.load_result(io.save_result(result, tmp_path / "run.json"))
        assert loaded.robustness_summary() == result.robustness_summary()
        for original, restored in zip(result.rounds, loaded.rounds):
            for key in ("retries", "dropped_messages", "bypasses", "resyncs"):
                assert restored.detail[key] == original.detail[key]
        assert loaded.config.get("accounting") == result.config.get("accounting")
