"""Contract-linter tests: the zero-violation gate plus per-rule fixtures.

The gate test is the PR's acceptance criterion made permanent: running
``repro.analysis`` over the live tree must report zero unsuppressed
violations — every intentional exception is either allowlisted
(wire_allowlist.txt) or carries an inline ``# repro: allow[...]`` pragma
with a reason.  The fixture tests exercise each rule class on minimal
positive/negative snippets through :func:`repro.analysis.check_source`;
each class filters to the rule ids under test so fixtures stay minimal
(an unannotated one-liner should not have to satisfy the hygiene rule to
test the determinism rule).
"""

import json
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.analysis import check_source, main, run_analysis
from repro.analysis.typecheck import MYPY_SUBSET, mypy_available, run_mypy

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")

DET_IDS = ["det-global-rng", "det-wallclock", "det-unseeded-rng", "det-set-order"]
ARENA_IDS = ["arena-rebind", "arena-dtype"]
FORK_IDS = ["fork-module-state", "fork-lambda", "fork-nested-def",
            "fork-open-handle"]


def _violations(source, rel="repro/sim/fixture.py", rules=None):
    kept, suppressed = check_source(
        textwrap.dedent(source), rel=rel, rule_filter=rules
    )
    return kept, suppressed


def _ids(violations):
    return [v.rule for v in violations]


# ---------------------------------------------------------------------- #
# The gate: the live tree is clean.
# ---------------------------------------------------------------------- #
class TestTreeIsClean:
    def test_zero_unsuppressed_violations(self):
        report = run_analysis([SRC_REPRO])
        rendered = "\n".join(v.render() for v in report.violations)
        assert report.ok, f"contract violations in src/repro:\n{rendered}"

    def test_every_suppression_carries_a_reason(self):
        report = run_analysis([SRC_REPRO])
        assert report.suppressed, "expected the known pragma inventory"
        for violation in report.suppressed:
            assert violation.suppressed and violation.reason

    @pytest.mark.skipif(not mypy_available(), reason="mypy not installed")
    def test_mypy_subset_fully_annotated(self):
        status, violations = run_mypy(os.path.join(REPO_ROOT, "src"))
        assert status == "ok", status
        rendered = "\n".join(v.render() for v in violations)
        assert not violations, f"untyped defs in {MYPY_SUBSET}:\n{rendered}"


# ---------------------------------------------------------------------- #
# Rule 1 — determinism
# ---------------------------------------------------------------------- #
class TestDeterminismRule:
    def check(self, source, rel="repro/sim/fixture.py"):
        return _violations(source, rel=rel, rules=DET_IDS)

    def test_global_numpy_rng_flagged(self):
        kept, _ = self.check(
            """
            import numpy as np
            def f():
                return np.random.rand(3)
            """
        )
        assert _ids(kept) == ["det-global-rng"]

    def test_stdlib_random_flagged(self):
        kept, _ = self.check(
            """
            import random
            def f():
                return random.random()
            """
        )
        assert _ids(kept) == ["det-global-rng"]

    def test_from_import_of_stdlib_random_flagged(self):
        kept, _ = self.check(
            """
            from random import shuffle
            def f(xs):
                shuffle(xs)
            """
        )
        assert _ids(kept) == ["det-global-rng"]

    def test_seeded_generator_clean(self):
        kept, _ = self.check(
            """
            import numpy as np
            def f(seed):
                rng = np.random.default_rng(seed)
                return rng.normal(size=3)
            """
        )
        assert kept == []

    def test_unseeded_default_rng_flagged(self):
        kept, _ = self.check(
            """
            import numpy as np
            def f():
                return np.random.default_rng()
            """
        )
        assert _ids(kept) == ["det-unseeded-rng"]

    def test_seed_sequence_with_entropy_clean(self):
        kept, _ = self.check(
            """
            import numpy as np
            def f(seed):
                return np.random.default_rng(np.random.SeedSequence([seed, 7]))
            """
        )
        assert kept == []

    def test_wallclock_read_flagged(self):
        kept, _ = self.check(
            """
            import time
            def f():
                return time.perf_counter()
            """
        )
        assert _ids(kept) == ["det-wallclock"]

    def test_datetime_now_flagged(self):
        kept, _ = self.check(
            """
            from datetime import datetime
            def f():
                return datetime.now()
            """
        )
        assert _ids(kept) == ["det-wallclock"]

    def test_simulated_time_parameter_clean(self):
        kept, _ = self.check(
            """
            def f(time):
                return time + 1.0
            """
        )
        assert kept == []

    def test_sum_over_set_flagged(self):
        kept, _ = self.check(
            """
            def f(xs):
                return sum(set(xs))
            """
        )
        assert _ids(kept) == ["det-set-order"]

    def test_iteration_over_set_display_flagged(self):
        kept, _ = self.check(
            """
            def f(a, b):
                for x in {a, b}:
                    print(x)
            """
        )
        assert _ids(kept) == ["det-set-order"]

    def test_sum_over_sorted_set_clean(self):
        kept, _ = self.check(
            """
            def f(xs):
                return sum(sorted(set(xs)))
            """
        )
        assert kept == []

    def test_rule_skips_non_runtime_subpackages(self):
        kept, _ = self.check(
            """
            import time
            def f():
                return time.time()
            """,
            rel="repro/experiments/fixture.py",
        )
        assert kept == []


# ---------------------------------------------------------------------- #
# Rule 2 — arena aliasing
# ---------------------------------------------------------------------- #
class TestArenaAliasingRule:
    def check(self, source, rel="repro/sim/fixture.py"):
        return _violations(source, rel=rel, rules=ARENA_IDS)

    def test_data_rebind_flagged(self):
        kept, _ = self.check(
            """
            import numpy as np
            def f(param):
                param.data = np.zeros(3)
            """
        )
        assert _ids(kept) == ["arena-rebind"]

    def test_grad_rebind_flagged(self):
        kept, _ = self.check(
            """
            def f(param, g):
                param.grad = g
            """
        )
        assert _ids(kept) == ["arena-rebind"]

    def test_grad_drop_to_none_clean(self):
        kept, _ = self.check(
            """
            def f(param):
                param.grad = None
            """
        )
        assert kept == []

    def test_in_place_write_clean(self):
        kept, _ = self.check(
            """
            def f(param, incoming):
                param.data[...] = incoming
                param.data += 1.0
            """
        )
        assert kept == []

    def test_constructor_initial_binding_clean(self):
        kept, _ = self.check(
            """
            class Tensor:
                def __init__(self, data):
                    self.data = data
                    self.grad = None
            """
        )
        assert kept == []

    def test_rebind_outside_constructor_flagged_even_on_self(self):
        kept, _ = self.check(
            """
            class Tensor:
                def reset(self, data):
                    self.data = data
            """
        )
        assert _ids(kept) == ["arena-rebind"]

    def test_narrowed_store_flagged(self):
        kept, _ = self.check(
            """
            import numpy as np
            def f(param, x):
                param.data[...] = x.astype(np.float32)
            """
        )
        assert _ids(kept) == ["arena-dtype"]

    def test_fp64_store_clean(self):
        kept, _ = self.check(
            """
            import numpy as np
            def f(param, x):
                param.data[...] = x.astype(np.float64)
            """
        )
        assert kept == []

    def test_applies_outside_runtime_subpackages_too(self):
        kept, _ = self.check(
            """
            def f(param, g):
                param.grad = g
            """,
            rel="repro/experiments/fixture.py",
        )
        assert _ids(kept) == ["arena-rebind"]


# ---------------------------------------------------------------------- #
# Rule 3 — wire boundary
# ---------------------------------------------------------------------- #
class TestWireBoundaryRule:
    def check(self, source, rel="repro/sim/fixture.py"):
        return _violations(source, rel=rel, rules=["wire-boundary"])

    def test_direct_pricing_call_flagged(self):
        kept, _ = self.check(
            """
            class Trainer:
                def round_time(self, network, nbytes):
                    return network.p2p_time_between(0, 1, nbytes)
            """
        )
        assert _ids(kept) == ["wire-boundary"]
        assert "Trainer.round_time" in kept[0].message

    def test_allowlisted_module_clean(self):
        kept, _ = self.check(
            """
            class NetworkModel:
                def broadcast_time(self, n, nbytes):
                    return sum(self.p2p_time(nbytes) for _ in range(n))
            """,
            rel="repro/sim/network.py",
        )
        assert kept == []

    def test_allowlisted_class_prefix_scopes_to_that_class(self):
        source = """
        class ReliableDelivery:
            def attempt(self, network, nbytes):
                return network.degraded_p2p_time(0, 1, nbytes, 1.0)

        class Rogue:
            def price(self, network, nbytes):
                return network.degraded_p2p_time(0, 1, nbytes, 1.0)
        """
        kept, _ = self.check(source, rel="repro/sim/linkfaults.py")
        assert _ids(kept) == ["wire-boundary"]
        assert "Rogue.price" in kept[0].message

    def test_bare_name_of_same_spelling_clean(self):
        kept, _ = self.check(
            """
            def p2p_time(nbytes):
                return nbytes / 8e9
            def f(nbytes):
                return p2p_time(nbytes)
            """
        )
        assert kept == []


# ---------------------------------------------------------------------- #
# Rule 4 — fork safety
# ---------------------------------------------------------------------- #
class TestForkSafetyRule:
    def check(self, source, rel="repro/parallel/fixture.py"):
        return _violations(source, rel=rel, rules=FORK_IDS)

    def test_module_level_mutable_state_flagged(self):
        kept, _ = self.check(
            """
            CACHE = {}
            """
        )
        assert _ids(kept) == ["fork-module-state"]

    def test_immutable_module_state_clean(self):
        kept, _ = self.check(
            """
            NAMES = ("serial", "thread", "process")
            LIMIT = 16
            """
        )
        assert kept == []

    def test_dunder_all_clean(self):
        kept, _ = self.check(
            """
            __all__ = ["f"]
            def f():
                pass
            """
        )
        assert kept == []

    def test_rule_scoped_to_fork_shipped_modules(self):
        kept, _ = self.check(
            """
            CACHE = {}
            """,
            rel="repro/comm/fixture.py",
        )
        assert kept == []

    def test_lambda_on_shipped_object_flagged(self):
        kept, _ = self.check(
            """
            class Task:
                def __init__(self):
                    self.fn = lambda x: x
            """
        )
        assert _ids(kept) == ["fork-lambda"]

    def test_nested_def_on_shipped_object_flagged(self):
        kept, _ = self.check(
            """
            class Task:
                def __init__(self):
                    def helper(x):
                        return x
                    self.fn = helper
            """
        )
        assert _ids(kept) == ["fork-nested-def"]

    def test_module_level_function_reference_clean(self):
        kept, _ = self.check(
            """
            def helper(x):
                return x

            class Task:
                def __init__(self):
                    self.fn = helper
            """
        )
        assert kept == []

    def test_open_handle_on_shipped_object_flagged(self):
        kept, _ = self.check(
            """
            class Loader:
                def __init__(self, path):
                    self.fh = open(path, "rb")
            """
        )
        assert _ids(kept) == ["fork-open-handle"]


# ---------------------------------------------------------------------- #
# Rule 5 — accounting kinds
# ---------------------------------------------------------------------- #
class TestAccountingRule:
    def check(self, source, rel="repro/core/fixture.py"):
        return _violations(source, rel=rel, rules=["acct-kind"])

    def test_known_kind_clean(self):
        kept, _ = self.check(
            """
            class T:
                def sync(self, t, n):
                    self.volume.record(t, n, "partial_sync", src=0, dst=1)
            """
        )
        assert kept == []

    def test_missing_kind_flagged(self):
        kept, _ = self.check(
            """
            class T:
                def sync(self, t, n):
                    self.volume.record(t, n)
            """
        )
        assert _ids(kept) == ["acct-kind"]

    def test_unknown_kind_flagged(self):
        kept, _ = self.check(
            """
            class T:
                def sync(self, t, n):
                    self.volume.record(t, n, kind="bcast")
            """
        )
        assert _ids(kept) == ["acct-kind"]
        assert "bcast" in kept[0].message

    def test_dynamic_kind_flagged(self):
        kept, _ = self.check(
            """
            class T:
                def sync(self, t, n, kind):
                    self.accountant.record(t, n, kind)
            """
        )
        assert _ids(kept) == ["acct-kind"]

    def test_trace_record_is_not_an_accountant(self):
        kept, _ = self.check(
            """
            class T:
                def sync(self, t):
                    self.trace.record("round_start", t)
            """
        )
        assert kept == []


# ---------------------------------------------------------------------- #
# Rule 6 — API hygiene (AST half; the mypy half is gated above)
# ---------------------------------------------------------------------- #
class TestApiHygieneRule:
    def check(self, source, rel="repro/comm/fixture.py"):
        return _violations(source, rel=rel, rules=["api-annotations"])

    def test_unannotated_public_function_flagged(self):
        kept, _ = self.check(
            """
            def exchange(vectors, wire=None):
                return vectors
            """
        )
        assert _ids(kept) == ["api-annotations"]
        assert "vectors" in kept[0].message

    def test_annotated_public_function_clean(self):
        kept, _ = self.check(
            """
            from typing import Optional
            def exchange(vectors: list, wire: Optional[str] = None) -> list:
                return vectors
            """
        )
        assert kept == []

    def test_private_function_not_flagged(self):
        kept, _ = self.check(
            """
            def _helper(x):
                return x
            """
        )
        assert kept == []

    def test_public_method_of_public_class_flagged(self):
        kept, _ = self.check(
            """
            class Executor:
                def run_tasks(self, cluster, tasks):
                    return {}
            """
        )
        assert _ids(kept) == ["api-annotations"]
        assert "Executor.run_tasks" in kept[0].message

    def test_rule_scoped_to_comm_and_sim(self):
        kept, _ = self.check(
            """
            def exchange(vectors):
                return vectors
            """,
            rel="repro/core/fixture.py",
        )
        assert kept == []


# ---------------------------------------------------------------------- #
# Pragma machinery
# ---------------------------------------------------------------------- #
class TestPragmas:
    def check(self, source, rules=DET_IDS + ARENA_IDS):
        return _violations(source, rules=rules)

    def test_inline_pragma_suppresses(self):
        kept, suppressed = self.check(
            """
            import numpy as np
            def f():
                return np.random.default_rng()  # repro: allow[det-unseeded-rng] fixture
            """
        )
        assert kept == []
        assert _ids(suppressed) == ["det-unseeded-rng"]
        assert suppressed[0].reason == "fixture"

    def test_pragma_on_line_above_suppresses(self):
        kept, suppressed = self.check(
            """
            import numpy as np
            def f():
                # repro: allow[det-unseeded-rng] fixture
                return np.random.default_rng()
            """
        )
        assert kept == []
        assert _ids(suppressed) == ["det-unseeded-rng"]

    def test_pragma_two_lines_above_does_not_suppress(self):
        kept, suppressed = self.check(
            """
            import numpy as np
            def f():
                # repro: allow[det-unseeded-rng] fixture
                x = 1
                return np.random.default_rng()
            """
        )
        assert "det-unseeded-rng" in _ids(kept)
        assert "stale-pragma" in _ids(kept)
        assert suppressed == []

    def test_pragma_suppresses_only_named_rule(self):
        kept, suppressed = self.check(
            """
            import numpy as np
            def f(param):
                param.data = np.random.default_rng()  # repro: allow[det-unseeded-rng] fixture
            """
        )
        assert _ids(kept) == ["arena-rebind"]
        assert _ids(suppressed) == ["det-unseeded-rng"]

    def test_stale_pragma_reported(self):
        kept, suppressed = self.check(
            """
            def f(x):
                # repro: allow[det-unseeded-rng] nothing here anymore
                return x
            """
        )
        assert _ids(kept) == ["stale-pragma"]
        assert suppressed == []

    def test_missing_reason_is_a_syntax_violation(self):
        kept, _ = self.check(
            """
            import numpy as np
            def f():
                return np.random.default_rng()  # repro: allow[det-unseeded-rng]
            """
        )
        # A reasonless pragma suppresses nothing: both the syntax
        # violation and the original violation are reported.
        assert "pragma-syntax" in _ids(kept)
        assert "det-unseeded-rng" in _ids(kept)

    def test_unknown_rule_id_is_a_syntax_violation(self):
        kept, _ = self.check(
            """
            def f(x):
                return x  # repro: allow[no-such-rule] typo'd id
            """
        )
        assert _ids(kept) == ["pragma-syntax"]
        assert "no-such-rule" in kept[0].message

    def test_filtered_run_does_not_misreport_stale(self):
        # A pragma for a rule excluded by --rules must not read as stale.
        kept, _ = self.check(
            """
            import numpy as np
            def f():
                return np.random.default_rng()  # repro: allow[det-unseeded-rng] fixture
            """,
            rules=["arena-rebind"],
        )
        assert kept == []


# ---------------------------------------------------------------------- #
# CLI: exit codes and the JSON artefact
# ---------------------------------------------------------------------- #
class TestCli:
    def _write_pkg(self, tmp_path, body):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text(textwrap.dedent(body))
        return str(tmp_path / "repro")

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        target = self._write_pkg(
            tmp_path,
            """
            def f(x: float) -> float:
                return x
            """,
        )
        assert main([target, "--no-mypy"]) == 0

    def test_injected_violation_exits_nonzero(self, tmp_path, capsys):
        target = self._write_pkg(
            tmp_path,
            """
            import time
            def f() -> float:
                return time.time()
            """,
        )
        assert main([target, "--no-mypy"]) == 1
        out = capsys.readouterr().out
        assert "det-wallclock" in out

    def test_json_report_shape(self, tmp_path, capsys):
        target = self._write_pkg(
            tmp_path,
            """
            import time
            def f() -> float:
                return time.time()
            """,
        )
        assert main([target, "--format", "json", "--no-mypy"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["files_scanned"] == 3
        rules = {v["rule"] for v in payload["violations"]}
        assert rules == {"det-wallclock"}
        entry = payload["violations"][0]
        assert entry["line"] == 4 and entry["path"].endswith("mod.py")

    def test_rules_filter(self, tmp_path, capsys):
        target = self._write_pkg(
            tmp_path,
            """
            import time
            def f() -> float:
                return time.time()
            """,
        )
        assert main([target, "--rules", "arena-rebind", "--no-mypy"]) == 0

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["/no/such/path", "--no-mypy"]) == 2

    def test_module_entry_point_runs(self):
        # The acceptance-criterion invocation, end to end.
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", SRC_REPRO, "--no-mypy"],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 unsuppressed violations" in proc.stdout

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "det-global-rng", "arena-rebind", "wire-boundary",
            "fork-module-state", "acct-kind", "api-annotations",
        ):
            assert rule_id in out


# ---------------------------------------------------------------------- #
# Regression: the true positives this linter found, fixed.
# ---------------------------------------------------------------------- #
class TestLinterFoundFixes:
    def test_directed_ring_unseeded_is_deterministic(self):
        from repro.comm.topology import directed_ring

        a = directed_ring(range(8)).ring_order()
        b = directed_ring(range(8)).ring_order()
        assert a == b  # was OS-entropy shuffled before the linter fix

    def test_random_regular_unseeded_is_deterministic(self):
        from repro.comm.topology import random_regular_topology

        a = random_regular_topology(range(8), 3)
        b = random_regular_topology(range(8), 3)
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_failure_injector_unseeded_is_deterministic(self):
        from repro.sim.failures import FailureInjector

        kwargs = dict(
            device_ids=range(4), horizon=50.0,
            failure_rate=0.1, mean_downtime=3.0,
        )
        a = FailureInjector.random(**kwargs)
        b = FailureInjector.random(**kwargs)
        for device in range(4):
            assert a.windows_for(device) == b.windows_for(device)

    def test_explicit_rng_still_varies_draws(self):
        from repro.comm.topology import directed_ring

        rng = np.random.default_rng(0)
        orders = {tuple(directed_ring(range(8), rng=rng).ring_order())
                  for _ in range(6)}
        assert len(orders) > 1
