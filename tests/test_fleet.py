"""Vectorised fleets: FleetArena/FleetModule contracts and executor parity.

The fleet contract extends the executor contract (``tests/test_executor.py``):
running D architecture-identical replicas through ONE batched
forward/backward — stacked evaluation and ``executor="fleet"`` training
bursts — leaves every trajectory bitwise identical to the serial
per-device loop on the same seeds.  These tests pin:

* the :class:`~repro.comm.params.FleetArena` storage contract (aliasing,
  rebinding, release) and :meth:`~repro.comm.params.ParamArena.layout`;
* unit-level batched training parity for MLP / CNN / dropout models;
* end-to-end HADFL and baseline parity for ``executor="fleet"``;
* the zero-copy evaluation paths (arena-write ``evaluate_params``,
  ``evaluate_device``, batched ``evaluate_devices``);
* serial fallback for non-fleet-capable models;
* the linter audit: the fleet surface adds no unsanctioned pricing
  sites or accounting kinds.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, softmax_cross_entropy
from repro.autograd.ops import fleet_softmax_cross_entropy
from repro.comm.params import ArenaSlot, FleetArena, FlatParamCodec, ParamArena
from repro.core import HADFLTrainer
from repro.experiments import ExperimentConfig
from repro.nn.fleet import FleetModule, fleet_capable
from repro.nn.layers import Dropout, Flatten, Linear, ReLU, Sequential
from repro.nn.models.mlp import MLP
from repro.nn.models.simple_cnn import SimpleCNN
from repro.nn.module import Module
from repro.optim.sgd import SGD
from repro.parallel import LocalTrainTask
from repro.sim import FleetExecutor, SerialExecutor, make_executor
from repro.sim.executor import EXECUTOR_NAMES
from repro.sim.fleet import burst_signature, plan_burst


def _mlp(seed):
    return MLP(12, hidden=(8, 8), num_classes=4, rng=np.random.default_rng(seed))


def _cnn(seed):
    return SimpleCNN(
        in_channels=1, num_classes=4, image_size=8, width=4,
        rng=np.random.default_rng(seed),
    )


def _dropnet(seed):
    rng = np.random.default_rng(seed)
    return Sequential(
        Linear(12, 16, rng=rng),
        ReLU(),
        Dropout(0.3, rng=np.random.default_rng(seed + 1000)),
        Linear(16, 4, rng=rng),
    )


# ---------------------------------------------------------------------- #
class TestArenaLayout:
    def test_layout_matches_flat_order(self):
        model = _cnn(3)
        arena = ParamArena(model)
        layout = arena.layout()
        assert all(isinstance(slot, ArenaSlot) for slot in layout)
        assert layout[0].offset == 0
        cursor = 0
        for slot in layout:
            assert slot.offset == cursor
            assert slot.size == int(np.prod(slot.shape))
            cursor += slot.size
        assert cursor == arena.num_scalars
        # Param slots precede buffer slots and cover exactly param_scalars.
        param_scalars = sum(s.size for s in layout if s.is_param)
        assert param_scalars == arena.param_scalars
        names = dict(model.named_parameters())
        for slot in layout:
            if slot.is_param:
                view = arena.flat[slot.offset : slot.offset + slot.size]
                np.testing.assert_array_equal(
                    view.reshape(slot.shape), names[slot.name].data
                )


class TestFleetArena:
    def test_rows_alias_member_arenas(self):
        arenas = [ParamArena(_mlp(k)) for k in range(3)]
        before = [arena.read().copy() for arena in arenas]
        fleet = FleetArena(arenas)
        assert fleet.num_replicas == 3
        assert fleet.stack.shape == (3, arenas[0].num_scalars)
        for k, arena in enumerate(arenas):
            np.testing.assert_array_equal(fleet.stack[k], before[k])
            assert np.shares_memory(fleet.stack, arena.flat)
            assert np.shares_memory(fleet.grad_stack, arena.grad_flat)
        # A write through a parameter lands in the fleet row and vice versa.
        param = next(p for _, p in arenas[1].module.named_parameters())
        param.data[...] = 7.5
        assert (fleet.stack[1, : param.data.size] == 7.5).all()
        fleet.stack[2, :4] = -3.25
        assert (arenas[2].flat[:4] == -3.25).all()

    def test_release_restores_private_storage(self):
        arenas = [ParamArena(_mlp(k)) for k in range(2)]
        fleet = FleetArena(arenas)
        fleet.stack[0, 0] = 42.0
        fleet.release()
        for arena in arenas:
            assert not np.shares_memory(fleet.stack, arena.flat)
            assert not np.shares_memory(fleet.grad_stack, arena.grad_flat)
        assert arenas[0].flat[0] == 42.0
        # The released arenas still alias their parameters.
        param = next(p for _, p in arenas[0].module.named_parameters())
        assert np.shares_memory(param.data, arenas[0].flat)

    def test_mismatched_arenas_rejected(self):
        with pytest.raises(ValueError):
            FleetArena([])
        small = ParamArena(_mlp(0))
        big = ParamArena(MLP(12, hidden=(16,), num_classes=4,
                             rng=np.random.default_rng(1)))
        with pytest.raises(ValueError):
            FleetArena([small, big])

    def test_optimizer_steps_write_through_stack(self):
        arenas = [ParamArena(_mlp(k)) for k in range(2)]
        models = [arena.module for arena in arenas]
        optimizers = [SGD(m.parameters(), lr=0.1, momentum=0.9) for m in models]
        fleet = FleetArena(arenas)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(6, 12))
        y = rng.integers(0, 4, size=6)
        for model, optimizer in zip(models, optimizers):
            optimizer.zero_grad()
            loss = softmax_cross_entropy(model(Tensor(x)), y)
            loss.backward()
            before = fleet.stack.copy()
            optimizer.step()
            assert not np.array_equal(fleet.stack, before)
        fleet.release()


# ---------------------------------------------------------------------- #
def _serial_train_steps(models, optimizers, xs, ys):
    """Reference loop: each replica trains alone; returns per-step losses."""
    losses = []
    for step in range(len(xs)):
        step_losses = []
        for k, (model, optimizer) in enumerate(zip(models, optimizers)):
            optimizer.zero_grad()
            loss = softmax_cross_entropy(model(Tensor(xs[step, k])), ys[step, k])
            loss.backward()
            optimizer.step()
            step_losses.append(float(loss.data))
        losses.append(step_losses)
    return losses


def _fleet_train_steps(models, arenas, optimizers, xs, ys):
    fleet = FleetArena(arenas)
    module = FleetModule(
        models, fleet.stack, arenas[0].layout(), grad_stack=fleet.grad_stack
    )
    d = len(models)
    losses = []
    try:
        for step in range(len(xs)):
            for optimizer in optimizers:
                optimizer.zero_grad()
            module.sync_grad_liveness(d)
            logits = module.forward(Tensor(xs[step]), count=d, stacked=True)
            loss_vec = fleet_softmax_cross_entropy(logits, ys[step])
            loss_vec.backward(np.ones(d))
            module.adopt_member_grads(d)
            for optimizer in optimizers:
                optimizer.step()
            losses.append([float(v) for v in loss_vec.data])
    finally:
        fleet.release()
    return losses


class TestFleetModuleParity:
    @pytest.mark.parametrize(
        "factory,x_shape",
        [(_mlp, (12,)), (_cnn, (1, 8, 8)), (_dropnet, (12,))],
        ids=["mlp", "cnn", "dropout"],
    )
    def test_batched_training_bitwise_equals_serial(self, factory, x_shape):
        d, steps, batch = 4, 3, 6
        serial_models = [factory(k) for k in range(d)]
        fleet_models = [factory(k) for k in range(d)]
        serial_arenas = [ParamArena(m) for m in serial_models]
        fleet_arenas = [ParamArena(m) for m in fleet_models]
        serial_opts = [SGD(m.parameters(), lr=0.05, momentum=0.9)
                       for m in serial_models]
        fleet_opts = [SGD(m.parameters(), lr=0.05, momentum=0.9)
                      for m in fleet_models]
        rng = np.random.default_rng(9)
        xs = rng.normal(size=(steps, d, batch) + x_shape)
        ys = rng.integers(0, 4, size=(steps, d, batch))
        for m in serial_models + fleet_models:
            m.train()
        ref = _serial_train_steps(serial_models, serial_opts, xs, ys)
        got = _fleet_train_steps(fleet_models, fleet_arenas, fleet_opts, xs, ys)
        assert ref == got  # float-exact losses, every step, every replica
        for sa, fa in zip(serial_arenas, fleet_arenas):
            assert sa.read().tobytes() == fa.read().tobytes()
            assert sa.grad_flat.tobytes() == fa.grad_flat.tobytes()

    def test_shared_input_eval_bitwise_equals_serial(self):
        d = 3
        serial_models = [_cnn(k) for k in range(d)]
        fleet_models = [_cnn(k) for k in range(d)]
        arenas = [ParamArena(m, bind_grads=False) for m in fleet_models]
        stack = np.stack([a.read() for a in arenas])
        module = FleetModule(fleet_models, stack, arenas[0].layout())
        x = np.random.default_rng(2).normal(size=(5, 1, 8, 8))
        for m in serial_models + fleet_models:
            m.eval()
        out = module.forward(Tensor(x), stacked=False)
        for k, model in enumerate(serial_models):
            ref = model(Tensor(x))
            assert ref.data.tobytes() == np.ascontiguousarray(out.data[k]).tobytes()

    def test_capability_checks(self):
        assert fleet_capable(_mlp(0))
        assert fleet_capable(_cnn(0))

        class Custom(Module):
            def forward(self, x):
                return x

        assert not fleet_capable(Custom())
        assert not fleet_capable(Sequential(Linear(4, 4), Custom()))

        class SneakyLinear(Linear):
            def forward(self, x):
                return super().forward(x) * 2

        # Subclasses may override forward: exact-type dispatch only.
        assert not fleet_capable(SneakyLinear(4, 4))


# ---------------------------------------------------------------------- #
def _config(**overrides):
    defaults = dict(
        model="mlp",
        num_train=256,
        num_test=128,
        image_size=8,
        target_epochs=6.0,
        seed=11,
        momentum=0.9,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def _run_hadfl(config):
    cluster = config.make_cluster()
    trainer = HADFLTrainer(cluster, params=config.hadfl_params(), seed=config.seed)
    result = trainer.run(target_epochs=config.target_epochs)
    cluster.close()
    return result, cluster, trainer


def _assert_bitwise_equal(ref, other):
    ref_result, ref_cluster, _ref_trainer = ref
    result, cluster, _trainer = other
    assert len(ref_result.rounds) == len(result.rounds)
    np.testing.assert_array_equal(ref_result.train_losses(), result.train_losses())
    np.testing.assert_array_equal(
        ref_result.test_accuracies(), result.test_accuracies()
    )
    np.testing.assert_array_equal(ref_result.times(), result.times())
    for ra, rb in zip(ref_result.rounds, result.rounds):
        assert ra.selected == rb.selected
        assert ra.versions == rb.versions
        assert ra.comm_bytes == rb.comm_bytes
    for ref_device, device in zip(ref_cluster.devices, cluster.devices):
        assert ref_device.version == device.version
        np.testing.assert_array_equal(ref_device.get_params(), device.get_params())
        np.testing.assert_array_equal(
            ref_device.arena.grad_flat, device.arena.grad_flat
        )
        for ref_vec, vec in zip(
            ref_device.optimizer.flat_state(), device.optimizer.flat_state()
        ):
            np.testing.assert_array_equal(ref_vec, vec)
        assert (
            ref_device._rng.bit_generator.state == device._rng.bit_generator.state
        )
        assert (
            ref_device.cycler.get_state()["rng_state"]
            == device.cycler.get_state()["rng_state"]
        )


class TestFleetExecutorParity:
    def test_fixed_seed_run_identical_to_serial(self):
        ref = _run_hadfl(_config(executor="serial"))
        assert len(ref[0].rounds) >= 2
        _assert_bitwise_equal(ref, _run_hadfl(_config(executor="fleet")))

    def test_jittered_devices_identical_to_serial(self):
        """Jitter draws live on the device RNG; plan_burst pre-draws them
        in exactly the serial order (including train_until's consumed
        overshoot probe)."""
        ref = _run_hadfl(_config(executor="serial", jitter=0.2, seed=5))
        _assert_bitwise_equal(
            ref, _run_hadfl(_config(executor="fleet", jitter=0.2, seed=5))
        )

    def test_cnn_run_identical_to_serial(self):
        ref = _run_hadfl(_config(executor="serial", model="simple_cnn",
                                 target_epochs=3.0))
        _assert_bitwise_equal(
            ref,
            _run_hadfl(_config(executor="fleet", model="simple_cnn",
                               target_epochs=3.0)),
        )

    def test_dropout_streams_identical_to_serial(self):
        def factory(rng):
            return Sequential(
                Flatten(),
                Linear(3 * 8 * 8, 32, rng=rng),
                ReLU(),
                Dropout(0.4, rng=np.random.default_rng(rng.integers(2**31))),
                Linear(32, 10, rng=rng),
            )

        def build(executor):
            config = _config(executor=executor)
            train, test = config.make_data()
            from repro.sim import SimulatedCluster

            return SimulatedCluster(
                model_factory=factory,
                train_set=train,
                test_set=test,
                specs=config.make_specs(),
                batch_size=config.batch_size,
                lr_schedule=config.make_lr_schedule(),
                network=config.make_network(),
                seed=config.seed,
                executor=executor,
            )

        clusters = {name: build(name) for name in ("serial", "fleet")}
        for cluster in clusters.values():
            tasks = [
                LocalTrainTask(device_id=d.device_id, num_steps=6, start_time=0.0)
                for d in cluster.devices
            ]
            cluster.run_local_tasks(tasks)
            cluster.close()
        for ref_device, device in zip(
            clusters["serial"].devices, clusters["fleet"].devices
        ):
            np.testing.assert_array_equal(
                ref_device.get_params(), device.get_params()
            )
            # Dropout streams advanced identically.
            serial_states = [
                s for s in ref_device.export_train_state()["module_rng_states"]
            ]
            fleet_states = [
                s for s in device.export_train_state()["module_rng_states"]
            ]
            assert serial_states == fleet_states

    def test_divergent_step_counts_batch_as_prefixes(self):
        """Mixed num_steps bursts exercise the shrinking active prefix."""
        def run(executor):
            config = _config(executor=executor)
            cluster = config.make_cluster()
            tasks = [
                LocalTrainTask(device_id=d.device_id, num_steps=2 + 3 * i)
                for i, d in enumerate(cluster.devices)
            ]
            results = cluster.run_local_tasks(tasks)
            cluster.close()
            return results, cluster

        ref, ref_cluster = run("serial")
        got, cluster = run("fleet")
        assert set(ref) == set(got)
        for device_id in ref:
            assert ref[device_id].steps == got[device_id].steps
            assert ref[device_id].losses == got[device_id].losses
            assert ref[device_id].elapsed == got[device_id].elapsed
        for a, b in zip(ref_cluster.devices, cluster.devices):
            np.testing.assert_array_equal(a.get_params(), b.get_params())

    def test_zero_step_burst(self):
        config = _config(executor="fleet")
        cluster = config.make_cluster()
        tasks = [
            LocalTrainTask(device_id=d.device_id, num_steps=0)
            for d in cluster.devices
        ]
        results = cluster.run_local_tasks(tasks)
        for result in results.values():
            assert result.steps == 0
            assert result.losses == []
            assert np.isnan(result.mean_loss)
        cluster.close()

    def test_non_capable_model_falls_back_to_serial(self):
        class Scaled(Module):
            """Fleet-unknown wrapper: forces the serial fallback."""

            def __init__(self, rng):
                super().__init__()
                self.net = MLP(3 * 8 * 8, hidden=(16,), num_classes=10, rng=rng)

            def forward(self, x):
                return self.net(x) * 1.0

        def build(executor):
            config = _config(executor=executor)
            train, test = config.make_data()
            from repro.sim import SimulatedCluster

            return SimulatedCluster(
                model_factory=lambda rng: Scaled(rng),
                train_set=train,
                test_set=test,
                specs=config.make_specs(),
                batch_size=config.batch_size,
                seed=config.seed,
                executor=executor,
            )

        clusters = {name: build(name) for name in ("serial", "fleet")}
        assert burst_signature(clusters["fleet"].devices[0]) is None
        for cluster in clusters.values():
            tasks = [
                LocalTrainTask(device_id=d.device_id, num_steps=4, start_time=0.0)
                for d in cluster.devices
            ]
            cluster.run_local_tasks(tasks)
            cluster.close()
        for a, b in zip(clusters["serial"].devices, clusters["fleet"].devices):
            np.testing.assert_array_equal(a.get_params(), b.get_params())

    def test_plan_burst_matches_serial_timing(self):
        config = _config(jitter=0.4, seed=2)
        serial_cluster = config.make_cluster()
        fleet_cluster = config.make_cluster()
        serial_device = serial_cluster.devices[0]
        fleet_device = fleet_cluster.devices[0]
        ref = serial_device.train_steps(5, start_time=1.0)
        steps, elapsed = plan_burst(
            fleet_device, LocalTrainTask(device_id=0, num_steps=5, start_time=1.0)
        )
        assert (steps, elapsed) == (5, ref.elapsed)
        ref_until = serial_device.train_until(deadline=3.0, start_time=2.0)
        steps, elapsed = plan_burst(
            fleet_device,
            LocalTrainTask(device_id=0, deadline=3.0, start_time=2.0),
        )
        assert steps == ref_until.steps
        assert elapsed == ref_until.elapsed
        # The consumed overshoot probe left both streams in the same state.
        assert (
            serial_device._rng.bit_generator.state
            == fleet_device._rng.bit_generator.state
        )


class TestExecutorInterface:
    def test_make_executor_resolves_fleet(self):
        assert "fleet" in EXECUTOR_NAMES
        assert isinstance(make_executor("fleet"), FleetExecutor)
        assert isinstance(make_executor("serial"), SerialExecutor)

    def test_empty_batch(self):
        config = _config(executor="fleet")
        cluster = config.make_cluster()
        assert cluster.run_local_tasks([]) == {}
        cluster.close()

    def test_duplicate_device_tasks_rejected(self):
        config = _config(executor="fleet")
        cluster = config.make_cluster()
        tasks = [
            LocalTrainTask(device_id=0, num_steps=1, start_time=0.0),
            LocalTrainTask(device_id=0, num_steps=1, start_time=0.0),
        ]
        with pytest.raises(ValueError):
            cluster.run_local_tasks(tasks)
        cluster.close()

    def test_hadfl_params_accept_fleet(self):
        from repro.core.config import HADFLParams

        params = HADFLParams(executor="fleet")
        assert params.executor == "fleet"
        with pytest.raises(ValueError):
            HADFLParams(executor="warp")


# ---------------------------------------------------------------------- #
class TestEvaluationPaths:
    def _cluster(self, executor="serial", **overrides):
        config = _config(executor=executor, **overrides)
        cluster = config.make_cluster()
        tasks = [
            LocalTrainTask(device_id=d.device_id, num_steps=3, start_time=0.0)
            for d in cluster.devices
        ]
        cluster.run_local_tasks(tasks)
        return cluster

    def test_evaluate_params_arena_write_matches_codec_route(self):
        """Regression: the vectorized arena write loads a flat vector
        bitwise identically to the per-parameter codec unflatten."""
        cluster = self._cluster()
        flat = cluster.devices[1].get_params()
        via_arena = cluster.evaluate_params(flat, batch_size=32)
        codec = FlatParamCodec(cluster._eval_model)
        codec.unflatten(cluster._eval_model, flat)
        assert codec.flatten(cluster._eval_model).tobytes() == flat.tobytes()
        assert cluster.evaluate_params(flat, batch_size=32) == via_arena
        cluster.close()

    def test_evaluate_device_matches_codec_round_trip(self):
        cluster = self._cluster()
        for device in cluster.devices:
            direct = cluster.evaluate_device(device.device_id, batch_size=32)
            routed = cluster.evaluate_params(device.get_params(), batch_size=32)
            assert direct == routed
            assert device.model.training  # mode restored
        cluster.close()

    @pytest.mark.parametrize("model", ["mlp", "simple_cnn"])
    def test_batched_evaluate_devices_matches_loop(self, model):
        cluster = self._cluster(model=model)
        batched = cluster.evaluate_devices(batch_size=32)
        assert set(batched) == set(cluster.device_ids)
        for device in cluster.devices:
            looped = cluster.evaluate_device(device.device_id, batch_size=32)
            assert batched[device.device_id] == looped
        subset = cluster.evaluate_devices(device_ids=[1, 3], batch_size=32)
        assert set(subset) == {1, 3}
        assert subset[1] == batched[1]
        single = cluster.evaluate_devices(device_ids=[2], batch_size=32)
        assert single[2] == batched[2]
        cluster.close()

    def test_batched_eval_leaves_devices_untouched(self):
        cluster = self._cluster()
        before = {d.device_id: d.get_params() for d in cluster.devices}
        cluster.evaluate_devices(batch_size=32)
        for device in cluster.devices:
            np.testing.assert_array_equal(
                before[device.device_id], device.get_params()
            )
            assert device.model.training
        cluster.close()


# ---------------------------------------------------------------------- #
class TestFleetLinterAudit:
    FLEET_SOURCES = (
        "src/repro/nn/fleet.py",
        "src/repro/sim/fleet.py",
        "src/repro/comm/params.py",
        "src/repro/sim/executor.py",
    )

    def test_fleet_surface_is_contract_clean(self):
        """The full linter (determinism, aliasing, wire boundary,
        accounting, fork safety) passes over the fleet modules."""
        from repro.analysis import run_analysis

        report = run_analysis(list(self.FLEET_SOURCES))
        assert report.ok, report.render_text()

    def test_fleet_adds_no_pricing_or_accounting_sites(self):
        """Audit: no record() charges and no raw pricing-primitive calls
        anywhere in the fleet path — it moves compute, never bytes."""
        import ast

        from repro.analysis.base import call_name_chain
        from repro.analysis.rules.wireboundary import PRICING_PRIMITIVES

        for path in ("src/repro/nn/fleet.py", "src/repro/sim/fleet.py"):
            with open(path, "r", encoding="utf-8") as fh:
                tree = ast.parse(fh.read(), filename=path)
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                chain = call_name_chain(node.func)
                assert not (chain and chain[-1] == "record"), (path, node.lineno)
                assert not (chain and chain[-1] in PRICING_PRIMITIVES), (
                    path, node.lineno,
                )

    def test_fleet_has_no_wire_allowlist_entries(self):
        """The sanctioned-pricing inventory gained no fleet entries."""
        from repro.analysis.rules.wireboundary import DEFAULT_ALLOWLIST, load_allowlist

        for rel, _qual in load_allowlist(DEFAULT_ALLOWLIST):
            assert "fleet" not in rel

    def test_fleet_module_is_fork_shipped_scope(self):
        from repro.analysis.rules.forksafety import FORK_SHIPPED_PREFIXES

        assert "repro/sim/fleet.py" in FORK_SHIPPED_PREFIXES
        assert any(
            "repro/nn/fleet.py".startswith(p) for p in FORK_SHIPPED_PREFIXES
        )
