"""Unit tests for link faults and the reliable-delivery envelope."""

import numpy as np
import pytest

from repro.sim import (
    DEFAULT_RETRY_POLICY,
    HeterogeneousNetworkModel,
    LinkFaultModel,
    NetworkModel,
    ReliableDelivery,
    RetryPolicy,
)
from repro.sim.linkfaults import DeliveryOutcome, LinkFlapWindow

NET = NetworkModel(latency=1e-3, bandwidth=1e8)


class TestLinkFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError, match="drop_prob"):
            LinkFaultModel(drop_prob=1.0)
        with pytest.raises(ValueError, match="drop_prob"):
            LinkFaultModel(drop_prob=-0.1)
        with pytest.raises(ValueError, match="latency_jitter"):
            LinkFaultModel(latency_jitter=-1.0)
        with pytest.raises(ValueError, match="link"):
            LinkFaultModel(link_drop_prob={(0, 1): 1.5})

    def test_inactive_by_default(self):
        assert not LinkFaultModel().active

    def test_active_with_any_knob(self):
        assert LinkFaultModel(drop_prob=0.1).active
        assert LinkFaultModel(latency_jitter=0.2).active
        assert LinkFaultModel(link_drop_prob={(0, 1): 0.5}).active
        flapped = LinkFaultModel()
        flapped.flap(0, 1, down_at=1.0, up_at=2.0)
        assert flapped.active

    def test_clean_attempt_delivers_unit_factor(self):
        delivered, factor = LinkFaultModel().attempt(0, 1, 0.0)
        assert delivered
        assert factor == 1.0

    def test_deterministic_per_seed(self):
        def draws(seed):
            model = LinkFaultModel(drop_prob=0.5, latency_jitter=0.3, seed=seed)
            return [model.attempt(0, 1, float(t)) for t in range(50)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)

    def test_links_have_independent_streams(self):
        model = LinkFaultModel(drop_prob=0.5, seed=3)
        a = [model.attempt(0, 1, 0.0)[0] for _ in range(64)]
        b = [model.attempt(1, 0, 0.0)[0] for _ in range(64)]
        assert a != b  # directed links draw from distinct streams

    def test_per_link_override(self):
        model = LinkFaultModel(drop_prob=0.0, link_drop_prob={(0, 1): 0.999})
        assert model.drop_probability(0, 1) == 0.999
        assert model.drop_probability(1, 0) == 0.0
        # The overridden link drops essentially always; the reverse never.
        assert not any(model.attempt(0, 1, 0.0)[0] for _ in range(20))
        assert all(model.attempt(1, 0, 0.0)[0] for _ in range(20))

    def test_flap_window_blocks_deliveries(self):
        model = LinkFaultModel()
        model.flap(0, 1, down_at=1.0, up_at=2.0)
        assert model.is_up(0, 1, 0.5)
        assert not model.is_up(0, 1, 1.0)  # closed at the left edge
        assert not model.is_up(0, 1, 1.999)
        assert model.is_up(0, 1, 2.0)  # open at the right edge
        assert not model.attempt(0, 1, 1.5)[0]
        assert model.attempt(0, 1, 2.5)[0]

    def test_flap_symmetric_by_default(self):
        model = LinkFaultModel()
        model.flap(0, 1, down_at=0.0, up_at=1.0)
        assert not model.is_up(1, 0, 0.5)
        directed = LinkFaultModel()
        directed.flap(0, 1, down_at=0.0, up_at=1.0, symmetric=False)
        assert directed.is_up(1, 0, 0.5)

    def test_flap_window_validation(self):
        with pytest.raises(ValueError, match="up_at"):
            LinkFlapWindow(0, 1, down_at=2.0, up_at=2.0)
        with pytest.raises(ValueError, match="down_at"):
            LinkFlapWindow(0, 1, down_at=-1.0)

    def test_jitter_factor_positive_and_varying(self):
        model = LinkFaultModel(latency_jitter=0.5, seed=11)
        factors = [model.attempt(0, 1, 0.0)[1] for _ in range(32)]
        assert all(f > 0 for f in factors)
        assert len(set(factors)) > 1


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="base_timeout"):
            RetryPolicy(base_timeout=-1.0)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)

    def test_exponential_backoff(self):
        policy = RetryPolicy(base_timeout=0.1, backoff_factor=3.0)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.3)
        assert policy.backoff(2) == pytest.approx(0.9)

    def test_default_policy(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 4


class TestDeliveryOutcome:
    def test_retry_and_drop_counts(self):
        ok = DeliveryOutcome(delivered=True, attempts=3, elapsed=1.0, bytes_sent=30)
        assert ok.retries == 2
        assert ok.drops == 2  # two lost attempts preceded the delivery
        failed = DeliveryOutcome(delivered=False, attempts=4, elapsed=2.0, bytes_sent=40)
        assert failed.retries == 3
        assert failed.drops == 4  # every attempt was lost


class TestReliableDelivery:
    def test_fault_free_fast_path_matches_raw_network(self):
        for faults in (None, LinkFaultModel()):
            outcome = ReliableDelivery(NET, faults).send(0, 1, 4096, time=0.0)
            assert outcome.delivered
            assert outcome.attempts == 1
            assert outcome.elapsed == NET.p2p_time_between(0, 1, 4096)
            assert outcome.bytes_sent == 4096

    def test_retries_charge_bytes_per_attempt(self):
        faults = LinkFaultModel()
        faults.flap(0, 1, down_at=0.0, up_at=0.01)  # first attempt always lost
        outcome = ReliableDelivery(NET, faults).send(0, 1, 1000, time=0.0)
        assert outcome.delivered
        assert outcome.attempts >= 2
        assert outcome.bytes_sent == 1000 * outcome.attempts
        assert outcome.retries == outcome.attempts - 1

    def test_gives_up_after_max_attempts(self):
        faults = LinkFaultModel()
        faults.flap(0, 1, down_at=0.0)  # permanently dark link
        policy = RetryPolicy(max_attempts=3, base_timeout=0.05)
        outcome = ReliableDelivery(NET, faults, policy).send(0, 1, 1000, time=0.0)
        assert not outcome.delivered
        assert outcome.attempts == 3
        assert outcome.drops == 3
        assert outcome.bytes_sent == 3000
        # Elapsed covers three transfers' timeouts plus two full backoffs
        # and the final one (the sender waits out the last timeout too).
        transfer = NET.p2p_time_between(0, 1, 1000)
        backoffs = sum(policy.backoff(k) for k in range(3))
        assert outcome.elapsed == pytest.approx(3 * transfer + backoffs)

    def test_elapsed_grows_with_retries(self):
        faults = LinkFaultModel()
        faults.flap(0, 1, down_at=0.0, up_at=0.01)
        clean = ReliableDelivery(NET, None).send(0, 1, 1000, time=0.0)
        retried = ReliableDelivery(NET, faults).send(0, 1, 1000, time=0.0)
        assert retried.elapsed > clean.elapsed


class TestDegradedP2PTime:
    def test_unit_factor_is_exact(self):
        base = NET.p2p_time_between(0, 1, 5000)
        assert NET.degraded_p2p_time(0, 1, 5000, 1.0) == base

    def test_factor_scales_time(self):
        base = NET.p2p_time_between(0, 1, 5000)
        assert NET.degraded_p2p_time(0, 1, 5000, 2.5) == pytest.approx(2.5 * base)

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError, match="latency_factor"):
            NET.degraded_p2p_time(0, 1, 100, 0.0)

    def test_heterogeneous_network_uses_per_link_time(self):
        net = HeterogeneousNetworkModel(
            latency=1e-3, bandwidth=1e8,
            device_bandwidth={1: 1e6},
        )
        base = net.p2p_time_between(0, 1, 5000)
        assert net.degraded_p2p_time(0, 1, 5000, 2.0) == pytest.approx(2.0 * base)
