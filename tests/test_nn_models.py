"""Unit tests for the model zoo: shapes, determinism, registry."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro import nn
from repro.nn import models

RNG = np.random.default_rng(3)


class TestMLP:
    def test_forward_shape(self):
        m = models.MLP(12, (8,), 5, rng=RNG)
        assert m(Tensor(RNG.normal(size=(4, 12)))).shape == (4, 5)

    def test_flattens_image_input(self):
        m = models.MLP(3 * 4 * 4, (8,), 2, rng=RNG)
        assert m(Tensor(RNG.normal(size=(2, 3, 4, 4)))).shape == (2, 2)

    def test_empty_hidden_is_linear(self):
        m = models.MLP(6, (), 3, rng=RNG)
        assert len(m.parameters()) == 2


class TestSimpleCNN:
    def test_forward_shape(self):
        m = models.SimpleCNN(image_size=16, rng=RNG)
        assert m(Tensor(RNG.normal(size=(2, 3, 16, 16)))).shape == (2, 10)

    def test_invalid_image_size(self):
        with pytest.raises(ValueError):
            models.SimpleCNN(image_size=15, rng=RNG)


class TestResNet:
    def test_resnet_mini_shape(self):
        m = models.resnet_mini(num_classes=7, rng=RNG)
        assert m(Tensor(RNG.normal(size=(2, 3, 8, 8)))).shape == (2, 7)

    def test_resnet18_structure(self):
        m = models.resnet18(rng=np.random.default_rng(0))
        # 8 BasicBlocks in the (2,2,2,2) plan.
        blocks = [b for b in m.modules() if isinstance(b, models.BasicBlock)]
        assert len(blocks) == 8
        # Paper-scale parameter count: ~11.2M for the CIFAR variant.
        assert 10_000_000 < m.num_parameters() < 12_000_000

    def test_projection_shortcut_on_stride2(self):
        block = models.BasicBlock(4, 8, stride=2, rng=RNG)
        assert not isinstance(block.shortcut, nn.Identity)
        out = block(Tensor(RNG.normal(size=(1, 4, 8, 8))))
        assert out.shape == (1, 8, 4, 4)

    def test_identity_shortcut_same_channels(self):
        block = models.BasicBlock(4, 4, stride=1, rng=RNG)
        assert isinstance(block.shortcut, nn.Identity)

    def test_backward_pass_reaches_stem(self):
        m = models.resnet_mini(rng=RNG)
        loss = nn.CrossEntropyLoss()(
            m(Tensor(RNG.normal(size=(2, 3, 8, 8)))), np.array([0, 1])
        )
        loss.backward()
        stem_conv = m.stem[0]
        assert stem_conv.weight.grad is not None
        assert np.abs(stem_conv.weight.grad).sum() > 0


class TestVGG:
    def test_vgg_mini_shape(self):
        m = models.vgg_mini(rng=RNG)
        assert m(Tensor(RNG.normal(size=(2, 3, 16, 16)))).shape == (2, 10)

    def test_vgg16_conv_count(self):
        m = models.VGG(models.vgg.CFG_VGG16, image_size=32, rng=np.random.default_rng(0)) \
            if hasattr(models, "vgg") else None
        if m is None:
            pytest.skip("vgg cfg not exposed")
        convs = [c for c in m.modules() if isinstance(c, nn.Conv2d)]
        assert len(convs) == 13

    def test_vgg16_runs_on_32px(self):
        m = models.vgg16(rng=np.random.default_rng(0))
        out = m(Tensor(RNG.normal(size=(1, 3, 32, 32))))
        assert out.shape == (1, 10)

    def test_indivisible_image_size_raises(self):
        with pytest.raises(ValueError, match="divisible"):
            models.vgg_mini(image_size=12, rng=RNG)

    def test_dropout_in_classifier(self):
        from repro.nn.models.vgg import VGG, CFG_MINI

        m = VGG(CFG_MINI, image_size=16, dropout=0.5, rng=RNG)
        drops = [d for d in m.modules() if isinstance(d, nn.Dropout)]
        assert len(drops) == 1


class TestDeterminism:
    @pytest.mark.parametrize("builder", [models.resnet_mini, models.vgg_mini])
    def test_same_seed_same_weights(self, builder):
        a = builder(rng=np.random.default_rng(99))
        b = builder(rng=np.random.default_rng(99))
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_different_seed_different_weights(self):
        a = models.resnet_mini(rng=np.random.default_rng(1))
        b = models.resnet_mini(rng=np.random.default_rng(2))
        diffs = [
            np.abs(pa.data - pb.data).sum()
            for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters())
            if pa.size > 1
        ]
        assert max(diffs) > 0


class TestRegistry:
    def test_build_known_models(self):
        for name in ("mlp", "simple_cnn", "resnet_mini", "vgg_mini"):
            model = models.build_model(name, rng=np.random.default_rng(0))
            assert model.num_parameters() > 0

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            models.build_model("alexnet")

    def test_register_custom(self):
        name = "custom_test_model"
        if name not in models.available_models():
            models.register_model(name, lambda **kw: models.MLP(4, (), 2))
        assert name in models.available_models()
        assert models.build_model(name).num_parameters() > 0

    def test_double_register_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            models.register_model("mlp", lambda **kw: None)
