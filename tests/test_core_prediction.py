"""Unit tests for the version predictor (Eq. 7, Brown's smoothing)."""

import numpy as np
import pytest

from repro.core import VersionPredictor


class TestInitialisation:
    def test_invalid_alpha(self):
        for alpha in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                VersionPredictor(alpha=alpha)

    def test_unknown_device_predicts_zero(self):
        assert VersionPredictor().predict(42) == 0.0

    def test_first_observation_is_forecast(self):
        # With v1 = v2 = v, a = v and b = 0, so the forecast equals v.
        predictor = VersionPredictor(alpha=0.5)
        predictor.observe(0, 10.0)
        assert predictor.predict(0) == pytest.approx(10.0)
        assert predictor.trend(0) == 0.0


class TestRecurrence:
    def test_matches_hand_computed_eq7(self):
        """Pin the exact Eq. 7 recurrence for alpha=0.5, obs 10 then 20."""
        predictor = VersionPredictor(alpha=0.5)
        predictor.observe(0, 10.0)   # v1 = v2 = 10
        predictor.observe(0, 20.0)
        # v1 = .5*20 + .5*10 = 15 ; v2 = .5*15 + .5*10 = 12.5
        # a = 2*15 - 12.5 = 17.5 ; b = (0.5/0.5)*(15-12.5) = 2.5
        assert predictor.predict(0, steps_ahead=1) == pytest.approx(20.0)
        assert predictor.predict(0, steps_ahead=2) == pytest.approx(22.5)
        assert predictor.trend(0) == pytest.approx(2.5)

    def test_constant_series_converges_to_constant(self):
        predictor = VersionPredictor(alpha=0.3)
        for _ in range(50):
            predictor.observe(1, 36.0)
        assert predictor.predict(1) == pytest.approx(36.0, abs=1e-6)
        assert predictor.trend(1) == pytest.approx(0.0, abs=1e-6)

    def test_linear_series_trend_converges_to_slope(self):
        predictor = VersionPredictor(alpha=0.5)
        for j in range(200):
            predictor.observe(0, 5.0 * j)
        assert predictor.trend(0) == pytest.approx(5.0, rel=1e-3)
        # One-step forecast tracks the next point.
        assert predictor.predict(0, 1) == pytest.approx(5.0 * 200, rel=1e-2)

    def test_larger_alpha_tracks_change_faster(self):
        """After a speed change persists a few rounds, a high-α predictor
        has converged to the new level while a low-α one still lags —
        "the larger α, the closer the predicted value to v_i" (III-B)."""
        slow = VersionPredictor(alpha=0.1)
        fast = VersionPredictor(alpha=0.9)
        for predictor in (slow, fast):
            for _ in range(20):
                predictor.observe(0, 10.0)
            for _ in range(3):
                predictor.observe(0, 50.0)  # new level persists
        assert abs(fast.predict(0) - 50.0) < abs(slow.predict(0) - 50.0)

    def test_steps_ahead_scaling(self):
        predictor = VersionPredictor(alpha=0.5)
        predictor.observe(0, 0.0)
        predictor.observe(0, 10.0)
        one = predictor.predict(0, 1)
        three = predictor.predict(0, 3)
        assert three - one == pytest.approx(2 * predictor.trend(0))

    def test_negative_steps_ahead_rejected(self):
        predictor = VersionPredictor()
        with pytest.raises(ValueError):
            predictor.predict(0, steps_ahead=-1)


class TestBookkeeping:
    def test_observe_round_and_predict_round(self):
        predictor = VersionPredictor()
        predictor.observe_round({0: 5.0, 1: 7.0})
        forecasts = predictor.predict_round([0, 1, 2])
        assert forecasts[0] == pytest.approx(5.0)
        assert forecasts[1] == pytest.approx(7.0)
        assert forecasts[2] == 0.0

    def test_known_devices_sorted(self):
        predictor = VersionPredictor()
        predictor.observe(3, 1.0)
        predictor.observe(1, 1.0)
        assert predictor.known_devices() == [1, 3]

    def test_last_observation(self):
        predictor = VersionPredictor()
        assert predictor.last_observation(0) is None
        predictor.observe(0, 4.0)
        predictor.observe(0, 9.0)
        assert predictor.last_observation(0) == 9.0

    def test_reset_single_device(self):
        predictor = VersionPredictor()
        predictor.observe(0, 5.0)
        predictor.observe(1, 6.0)
        predictor.reset(0)
        assert predictor.known_devices() == [1]
        assert predictor.predict(0) == 0.0

    def test_reset_all(self):
        predictor = VersionPredictor()
        predictor.observe(0, 5.0)
        predictor.reset()
        assert predictor.known_devices() == []
