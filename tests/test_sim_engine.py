"""Unit tests for the discrete-event engine, network model, failures, trace."""

import numpy as np
import pytest

from repro.sim import (
    FailureInjector,
    FailureWindow,
    NetworkModel,
    Simulator,
    TraceRecorder,
)


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, log.append, "c")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(2.0, log.append, "b")
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_fifo_among_ties(self):
        sim = Simulator()
        log = []
        for tag in "abc":
            sim.schedule(1.0, log.append, tag)
        sim.run()
        assert log == ["a", "b", "c"]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert log == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, log.append, "x")
        sim.schedule(2.0, log.append, "y")
        handle.cancel()
        sim.run()
        assert log == ["y"]

    def test_run_until_horizon(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "early")
        sim.schedule(10.0, log.append, "late")
        sim.run(until=5.0)
        assert log == ["early"]
        assert sim.now == 5.0
        assert sim.pending == 1
        sim.run()
        assert log == ["early", "late"]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_cannot_schedule_in_past(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_at(4.0, lambda: None)

    def test_advance_to(self):
        sim = Simulator()
        sim.advance_to(7.5)
        assert sim.now == 7.5
        with pytest.raises(ValueError):
            sim.advance_to(3.0)

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="max_events"):
            sim.run(max_events=100)

    def test_processed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.processed == 4


class TestNetworkModel:
    def test_p2p_time(self):
        net = NetworkModel(latency=0.01, bandwidth=100.0)
        assert net.p2p_time(50) == pytest.approx(0.01 + 0.5)

    def test_ring_allreduce_formula(self):
        net = NetworkModel(latency=0.001, bandwidth=1e6)
        k, n = 4, 1e6
        expected = 2 * (k - 1) * (0.001 + (n / k) / 1e6)
        assert net.ring_allreduce_time(n, k) == pytest.approx(expected)

    def test_allreduce_single_node_free(self):
        assert NetworkModel().ring_allreduce_time(1e9, 1) == 0.0

    def test_gossip_equals_restricted_allreduce(self):
        net = NetworkModel()
        assert net.gossip_ring_time(1000, 2) == net.ring_allreduce_time(1000, 2)

    def test_broadcast_scales_with_receivers(self):
        net = NetworkModel(latency=0.01, bandwidth=1e3)
        assert net.broadcast_time(100, 3) == pytest.approx(3 * net.p2p_time(100))

    def test_parameter_server_volume_pressure(self):
        # The server round must cost more than the ring for many devices —
        # the scalability argument of the paper's introduction.
        net = NetworkModel(latency=1e-4, bandwidth=1e9)
        nbytes = 1e8
        assert net.parameter_server_round_time(nbytes, 16) > net.ring_allreduce_time(
            nbytes, 16
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(latency=-1)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0)
        net = NetworkModel()
        with pytest.raises(ValueError):
            net.p2p_time(-5)
        with pytest.raises(ValueError):
            net.ring_allreduce_time(10, 0)


class TestFailureInjector:
    def test_window_covers(self):
        window = FailureWindow(0, down_at=2.0, up_at=5.0)
        assert not window.covers(1.9)
        assert window.covers(2.0)
        assert window.covers(4.999)
        assert not window.covers(5.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            FailureWindow(0, down_at=5.0, up_at=5.0)
        with pytest.raises(ValueError):
            FailureWindow(0, down_at=-1.0)

    def test_is_alive(self):
        injector = FailureInjector()
        injector.fail(1, down_at=10.0, up_at=20.0)
        assert injector.is_alive(1, 5.0)
        assert not injector.is_alive(1, 15.0)
        assert injector.is_alive(1, 25.0)
        assert injector.is_alive(2, 15.0)  # unknown devices are alive

    def test_permanent_failure(self):
        injector = FailureInjector()
        injector.fail(0, down_at=1.0)
        assert not injector.is_alive(0, 1e12)

    def test_alive_devices(self):
        injector = FailureInjector()
        injector.fail(2, 0.0, 10.0)
        assert injector.alive_devices([0, 1, 2, 3], 5.0) == [0, 1, 3]

    def test_random_injector_reproducible(self):
        a = FailureInjector.random(
            [0, 1], horizon=100.0, failure_rate=0.1, mean_downtime=5.0,
            rng=np.random.default_rng(3),
        )
        b = FailureInjector.random(
            [0, 1], horizon=100.0, failure_rate=0.1, mean_downtime=5.0,
            rng=np.random.default_rng(3),
        )
        assert [w.down_at for w in a.windows_for(0)] == [
            w.down_at for w in b.windows_for(0)
        ]

    def test_random_zero_rate_no_failures(self):
        injector = FailureInjector.random(
            [0], horizon=100.0, failure_rate=0.0, mean_downtime=1.0
        )
        assert injector.windows_for(0) == []


class TestTraceRecorder:
    def test_record_and_filter(self):
        trace = TraceRecorder()
        trace.record(1.0, "send", device_id=0, dst=1)
        trace.record(2.0, "recv", device_id=1)
        trace.record(3.0, "send", device_id=1, dst=0)
        assert len(trace) == 3
        assert len(trace.events("send")) == 2
        assert trace.kinds() == {"send": 2, "recv": 1}

    def test_disabled_recorder_is_noop(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1.0, "send")
        assert len(trace) == 0

    def test_tail_and_clear(self):
        trace = TraceRecorder()
        for i in range(5):
            trace.record(float(i), "tick")
        assert [e.time for e in trace.tail(2)] == [3.0, 4.0]
        trace.clear()
        assert len(trace) == 0
