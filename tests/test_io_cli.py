"""Tests for persistence (repro.io), transforms, CLI, centralized FedAvg."""

import numpy as np
import pytest

from repro import io
from repro.baselines import CentralizedFedAvgTrainer
from repro.cli import build_parser, main
from repro.data import ArrayDataset
from repro.data.transforms import (
    AugmentingCycler,
    compose,
    gaussian_noise,
    random_crop,
    random_horizontal_flip,
)
from repro.experiments import ExperimentConfig, run_scheme
from repro.metrics import RoundRecord, RunResult
from repro.nn import models

RNG = np.random.default_rng(31)


def _tiny_config(**overrides):
    base = dict(
        model="mlp", num_train=160, num_test=80, image_size=8,
        target_epochs=3.0, seed=6,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestModelCheckpoints:
    def test_roundtrip_with_buffers(self, tmp_path):
        model = models.SimpleCNN(image_size=8, width=4, rng=np.random.default_rng(0))
        # Mutate BN running stats so buffers are non-trivial.
        from repro.autograd import Tensor

        model(Tensor(RNG.normal(size=(4, 3, 8, 8))))
        path = io.save_model(model, tmp_path / "ckpt.npz")
        other = models.SimpleCNN(image_size=8, width=4, rng=np.random.default_rng(9))
        io.load_model(other, path)
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(other.state_dict()[key], value)

    def test_creates_parent_dirs(self, tmp_path):
        model = models.MLP(4, (4,), 2, rng=np.random.default_rng(0))
        path = io.save_model(model, tmp_path / "deep" / "dir" / "m.npz")
        assert path.exists()


class TestResultPersistence:
    def _result(self):
        result = RunResult(scheme="hadfl", config={"tsync": 1})
        result.append(
            RoundRecord(
                round_index=0, sim_time=1.5, global_epoch=1.0, train_loss=0.9,
                test_loss=0.8, test_accuracy=0.5, selected=[0, 2],
                versions={0: 10, 2: 4}, comm_bytes=128, bypasses=1,
                detail={"wire_dtype": "fp32", "wire_cast_error": 2.5e-8},
            )
        )
        result.append(
            RoundRecord(
                round_index=1, sim_time=3.0, global_epoch=2.0, train_loss=0.5,
            )
        )
        return result

    def test_json_roundtrip(self, tmp_path):
        original = self._result()
        path = io.save_result(original, tmp_path / "run.json")
        loaded = io.load_result(path)
        assert loaded.scheme == "hadfl"
        assert len(loaded.rounds) == 2
        assert loaded.rounds[0].versions == {0: 10, 2: 4}
        assert loaded.rounds[0].selected == [0, 2]
        # detail (quantisation telemetry) survives the roundtrip.
        assert loaded.rounds[0].detail == {
            "wire_dtype": "fp32",
            "wire_cast_error": 2.5e-8,
        }
        assert loaded.rounds[1].test_accuracy is None
        assert loaded.rounds[1].detail == {}
        np.testing.assert_allclose(loaded.times(), original.times())

    def test_directory_roundtrip(self, tmp_path):
        family = {"a": self._result(), "b": self._result()}
        io.save_results(family, tmp_path / "runs")
        loaded = io.load_results(tmp_path / "runs")
        assert set(loaded) == {"a", "b"}

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            io.load_results(tmp_path / "nope")


class TestTransforms:
    def _batch(self, n=8):
        return RNG.normal(size=(n, 3, 8, 8))

    def test_flip_preserves_shape_and_pixels(self):
        batch = self._batch()
        out = random_horizontal_flip(1.0)(batch, np.random.default_rng(0))
        assert out.shape == batch.shape
        np.testing.assert_array_equal(out, batch[:, :, :, ::-1])

    def test_flip_probability_zero_identity(self):
        batch = self._batch()
        out = random_horizontal_flip(0.0)(batch, np.random.default_rng(0))
        np.testing.assert_array_equal(out, batch)

    def test_crop_shape_preserved(self):
        batch = self._batch()
        out = random_crop(2)(batch, np.random.default_rng(0))
        assert out.shape == batch.shape

    def test_noise_changes_pixels(self):
        batch = self._batch()
        out = gaussian_noise(0.1)(batch, np.random.default_rng(0))
        assert np.abs(out - batch).max() > 0

    def test_compose_order(self):
        batch = self._batch()
        both = compose(random_horizontal_flip(1.0), gaussian_noise(0.0))
        out = both(batch, np.random.default_rng(0))
        np.testing.assert_array_equal(out, batch[:, :, :, ::-1])

    def test_validation(self):
        with pytest.raises(ValueError):
            random_horizontal_flip(2.0)
        with pytest.raises(ValueError):
            random_crop(0)
        with pytest.raises(ValueError):
            gaussian_noise(-1.0)

    def test_augmenting_cycler(self):
        data = ArrayDataset(RNG.normal(size=(20, 3, 8, 8)), np.zeros(20, dtype=int))
        cycler = AugmentingCycler(
            data, batch_size=4,
            transform=gaussian_noise(0.5),
            rng=np.random.default_rng(0),
        )
        features, labels = cycler.next_batch()
        assert features.shape == (4, 3, 8, 8)
        assert cycler.samples_consumed == 4


class TestCentralizedFedAvg:
    def test_converges_and_counts_server_bytes(self):
        config = _tiny_config()
        cluster = config.make_cluster()
        trainer = CentralizedFedAvgTrainer(cluster)
        result = trainer.run(target_epochs=3)
        assert result.best_accuracy() > 0.3
        # Sec. II-B: every round moves exactly 2KM through the server.
        expected = 2 * len(cluster.devices) * cluster.model_nbytes
        for record in result.rounds:
            assert record.comm_bytes == expected
        assert trainer.server_bytes == expected * len(result.rounds)

    def test_server_serialisation_slower_than_decentralized(self):
        """The server round (2K sequential sends) must cost more wall time
        than the ring gossip — the paper's challenge-2 bottleneck."""
        from repro.baselines import DecentralizedFedAvgTrainer

        config = _tiny_config()
        central = CentralizedFedAvgTrainer(config.make_cluster())
        decentralized = DecentralizedFedAvgTrainer(config.make_cluster())
        r_central = central.run(target_epochs=2)
        r_dec = decentralized.run(target_epochs=2)
        assert r_central.total_time > r_dec.total_time

    def test_weighted_by_shard_size(self):
        config = _tiny_config()
        cluster = config.make_cluster()
        trainer = CentralizedFedAvgTrainer(cluster, local_steps=1)
        trainer.run(target_epochs=0.5)
        # All devices end the round with the same global model.
        reference = cluster.devices[0].get_params()
        for device in cluster.devices[1:]:
            np.testing.assert_allclose(device.get_params(), reference)

    def test_invalid_local_steps(self):
        with pytest.raises(ValueError):
            CentralizedFedAvgTrainer(_tiny_config().make_cluster(), local_steps=0)


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "resnet_mini" in out
        assert "hadfl" in out

    def test_run_and_save(self, tmp_path, capsys):
        code = main(
            [
                "run", "--scheme", "hadfl", "--model", "mlp",
                "--train", "160", "--test", "80", "--epochs", "2",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best accuracy" in out
        assert (tmp_path / "hadfl.json").exists()
        loaded = io.load_result(tmp_path / "hadfl.json")
        assert loaded.scheme == "hadfl"

    def test_run_with_fp32_wire(self, tmp_path, capsys):
        code = main(
            [
                "run", "--scheme", "hadfl", "--model", "mlp",
                "--train", "160", "--test", "80", "--epochs", "2",
                "--wire-dtype", "fp32", "--out", str(tmp_path),
            ]
        )
        assert code == 0
        loaded = io.load_result(tmp_path / "hadfl.json")
        assert loaded.config["wire_dtype"] == "fp32"
        # The cast-error telemetry survives the CLI save path.
        assert any(
            r.detail.get("wire_cast_error", 0.0) > 0.0 for r in loaded.rounds
        )

    def test_bad_wire_dtype_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--wire-dtype", "int8"])

    def test_compare(self, capsys):
        code = main(
            [
                "compare", "--model", "mlp", "--train", "160", "--test", "80",
                "--epochs", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "distributed" in out
        assert "accuracy vs virtual time" in out

    def test_bad_ratio_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--ratio", "3,oops"])

    def test_bad_scheme_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--scheme", "magic"])
