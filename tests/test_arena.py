"""Flat parameter arena: round-trips, view aliasing, fused-optimizer parity.

The arena contract (see ``repro/comm/params.py``): after construction,
``Parameter.data`` and every registered buffer are *views* into one
contiguous fp64 vector, and every in-repo mutation path (optimizer steps,
``set_buffer``, ``load_state_dict``, codec ``unflatten``) preserves that
aliasing.  The fused optimizer kernels must be bitwise-identical to the
per-parameter fallback, which in turn replicates the seed arithmetic.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from repro.comm.params import FlatParamCodec, ParamArena, get_flat_params
from repro.nn import models
from repro.optim import SGD, Adam
from repro.autograd import Tensor
from repro.nn.losses import CrossEntropyLoss


def _model(seed=0):
    return models.SimpleCNN(image_size=8, width=4, rng=np.random.default_rng(seed))


def _reference_flat(model, include_buffers=True):
    chunks = [p.data.reshape(-1) for _, p in model.named_parameters()]
    if include_buffers:
        chunks.extend(b.reshape(-1) for _, b in model.named_buffers())
    return np.concatenate(chunks)


class TestArenaRoundTrip:
    @pytest.mark.parametrize("include_buffers", [True, False])
    def test_construction_preserves_state(self, include_buffers):
        model = _model(0)
        reference = _reference_flat(model, include_buffers)
        arena = ParamArena(model, include_buffers=include_buffers)
        np.testing.assert_array_equal(arena.read(), reference)
        np.testing.assert_array_equal(_reference_flat(model, include_buffers), reference)

    @pytest.mark.parametrize("include_buffers", [True, False])
    def test_write_read_roundtrip(self, include_buffers):
        model = _model(0)
        arena = ParamArena(model, include_buffers=include_buffers)
        rng = np.random.default_rng(3)
        incoming = rng.normal(size=arena.num_scalars)
        arena.write(incoming)
        np.testing.assert_array_equal(arena.snapshot(), incoming)
        # The write landed in the actual parameters, not just the vector.
        np.testing.assert_array_equal(
            _reference_flat(model, include_buffers), incoming
        )

    def test_mix_matches_affine_blend(self):
        model = _model(0)
        arena = ParamArena(model)
        own = arena.snapshot()
        incoming = np.random.default_rng(5).normal(size=arena.num_scalars)
        arena.mix(incoming, own_weight=0.25)
        np.testing.assert_array_equal(
            arena.snapshot(), 0.25 * own + 0.75 * incoming
        )

    def test_size_validation(self):
        arena = ParamArena(_model(0))
        with pytest.raises(ValueError):
            arena.write(np.zeros(3))
        with pytest.raises(ValueError):
            arena.mix(np.zeros(3), own_weight=0.5)

    def test_param_prefix_layout(self):
        model = _model(0)
        arena = ParamArena(model)
        assert arena.param_scalars == model.num_parameters()
        np.testing.assert_array_equal(
            arena.params_flat, _reference_flat(model, include_buffers=False)
        )


class TestArenaAliasing:
    def test_arena_mutation_visible_through_parameters(self):
        model = _model(0)
        arena = ParamArena(model)
        arena.flat[:] = 7.5
        for param in model.parameters():
            assert np.all(param.data == 7.5)
        for _, buf in model.named_buffers():
            assert np.all(buf == 7.5)

    def test_parameter_mutation_visible_through_arena(self):
        model = _model(0)
        arena = ParamArena(model)
        first = model.parameters()[0]
        first.data[...] = -3.0
        assert np.all(arena.flat[: first.data.size] == -3.0)

    def test_aliasing_survives_load_state_dict(self):
        model = _model(0)
        donor = _model(1)
        arena = ParamArena(model)
        views = [p.data for p in model.parameters()]
        model.load_state_dict(donor.state_dict())
        for param, view in zip(model.parameters(), views):
            assert param.data is view  # storage identity preserved
        np.testing.assert_array_equal(arena.read(), _reference_flat(donor))

    def test_aliasing_survives_codec_unflatten(self):
        model = _model(0)
        arena = ParamArena(model)
        codec = FlatParamCodec(model)
        incoming = np.random.default_rng(9).normal(size=codec.num_scalars)
        codec.unflatten(model, incoming)
        np.testing.assert_array_equal(arena.flat, incoming)
        # And through a *foreign* codec (generic in-place path).
        other_codec = FlatParamCodec(_model(2))
        other_codec.unflatten(model, incoming * 2.0)
        np.testing.assert_array_equal(arena.flat, incoming * 2.0)

    def test_aliasing_survives_batchnorm_forward(self):
        model = _model(0)
        arena = ParamArena(model)
        model.train()
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3, 8, 8)))
        model(x)  # BatchNorm updates running stats via set_buffer
        np.testing.assert_array_equal(arena.read(), _reference_flat(model))

    def test_ensure_bound_repairs_external_rebind(self):
        model = _model(0)
        arena = ParamArena(model)
        first = model.parameters()[0]
        first.data = np.full(first.data.shape, 4.0)  # foreign rebind
        flat = arena.read()  # ensure_bound copies the values back in
        assert first.data.base is not None
        assert np.all(flat[: first.data.size] == 4.0)


class TestCachedCodecHelpers:
    def test_one_shot_helpers_reuse_codec(self):
        model = _model(0)
        flat_a = get_flat_params(model)
        flat_b = get_flat_params(model)
        assert model.__dict__["_codec_cache"] is not None
        np.testing.assert_array_equal(flat_a, flat_b)
        assert flat_a is not flat_b  # still snapshot semantics


class TestFusedOptimizerParity:
    def _grads(self, model, seed=11):
        rng = np.random.default_rng(seed)
        for param in model.parameters():
            param.grad = rng.normal(size=param.data.shape)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(lr=0.05),
            dict(lr=0.05, momentum=0.9),
            dict(lr=0.05, momentum=0.9, nesterov=True),
            dict(lr=0.05, weight_decay=1e-3),
            dict(lr=0.05, momentum=0.9, weight_decay=1e-3, nesterov=True),
        ],
    )
    def test_sgd_fused_bitwise_equals_fallback(self, kwargs):
        fused_model, plain_model = _model(0), _model(0)
        ParamArena(fused_model)
        fused = SGD(fused_model.parameters(), **kwargs)
        plain = SGD(plain_model.parameters(), **kwargs)
        plain.fused = False
        for step_seed in range(3):
            self._grads(fused_model, seed=step_seed)
            self._grads(plain_model, seed=step_seed)
            fused.step()
            plain.step()
        np.testing.assert_array_equal(
            _reference_flat(fused_model), _reference_flat(plain_model)
        )

    def test_adam_fused_bitwise_equals_fallback(self):
        fused_model, plain_model = _model(0), _model(0)
        ParamArena(fused_model)
        fused = Adam(fused_model.parameters(), lr=1e-3, weight_decay=1e-4)
        plain = Adam(plain_model.parameters(), lr=1e-3, weight_decay=1e-4)
        plain.fused = False
        for step_seed in range(3):
            self._grads(fused_model, seed=step_seed)
            self._grads(plain_model, seed=step_seed)
            fused.step()
            plain.step()
        np.testing.assert_array_equal(
            _reference_flat(fused_model), _reference_flat(plain_model)
        )

    def test_fused_adopts_arena_built_after_optimizer(self):
        # The cluster constructs the optimizer *before* the Device wraps
        # the model in an arena; the fused path must adopt the rebind.
        model = _model(0)
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        ParamArena(model)
        self._grads(model)
        opt.step()
        flat = opt._flat_params
        assert flat is not None
        assert flat.base is model.arena.flat or flat is model.arena.flat

    def test_fallback_on_missing_grad_skips_param(self):
        model = _model(0)
        ParamArena(model)
        opt = SGD(model.parameters(), lr=0.1)
        self._grads(model)
        first = model.parameters()[0]
        before = first.data.copy()
        first.grad = None
        opt.step()
        np.testing.assert_array_equal(first.data, before)

    def test_end_to_end_training_with_arena(self):
        model = _model(0)
        ParamArena(model)
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
        loss_fn = CrossEntropyLoss()
        rng = np.random.default_rng(0)
        x = rng.normal(size=(16, 3, 8, 8))
        y = rng.integers(0, 10, size=16)
        first_loss = None
        for _ in range(15):
            opt.zero_grad()
            loss = loss_fn(model(Tensor(x)), y)
            loss.backward()
            opt.step()
            if first_loss is None:
                first_loss = float(loss.data)
        assert float(loss.data) < first_loss
