"""Flat parameter arena: round-trips, view aliasing, fused-optimizer parity.

The arena contract (see ``repro/comm/params.py``): after construction,
``Parameter.data`` and every registered buffer are *views* into one
contiguous fp64 vector, and every in-repo mutation path (optimizer steps,
``set_buffer``, ``load_state_dict``, codec ``unflatten``) preserves that
aliasing.  The fused optimizer kernels must be bitwise-identical to the
per-parameter fallback, which in turn replicates the seed arithmetic.

The **grad arena** extends the same contract to gradients: every
``param.grad`` produced by backward on an arena-backed model is a view
into ``arena.grad_flat`` (params prefix, ``named_parameters`` order),
``zero_grad`` is one vectorized fill with zero per-parameter calls, and
the fused optimizer step adopts the grad vector zero-copy — no
per-parameter gather, no per-step flat-buffer allocation.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from repro.comm.params import FlatParamCodec, ParamArena, get_flat_params
from repro.nn import models
from repro.optim import SGD, Adam
from repro.autograd import Tensor
from repro.nn.losses import CrossEntropyLoss


def _model(seed=0):
    return models.SimpleCNN(image_size=8, width=4, rng=np.random.default_rng(seed))


def _reference_flat(model, include_buffers=True):
    chunks = [p.data.reshape(-1) for _, p in model.named_parameters()]
    if include_buffers:
        chunks.extend(b.reshape(-1) for _, b in model.named_buffers())
    return np.concatenate(chunks)


class TestArenaRoundTrip:
    @pytest.mark.parametrize("include_buffers", [True, False])
    def test_construction_preserves_state(self, include_buffers):
        model = _model(0)
        reference = _reference_flat(model, include_buffers)
        arena = ParamArena(model, include_buffers=include_buffers)
        np.testing.assert_array_equal(arena.read(), reference)
        np.testing.assert_array_equal(_reference_flat(model, include_buffers), reference)

    @pytest.mark.parametrize("include_buffers", [True, False])
    def test_write_read_roundtrip(self, include_buffers):
        model = _model(0)
        arena = ParamArena(model, include_buffers=include_buffers)
        rng = np.random.default_rng(3)
        incoming = rng.normal(size=arena.num_scalars)
        arena.write(incoming)
        np.testing.assert_array_equal(arena.snapshot(), incoming)
        # The write landed in the actual parameters, not just the vector.
        np.testing.assert_array_equal(
            _reference_flat(model, include_buffers), incoming
        )

    def test_mix_matches_affine_blend(self):
        model = _model(0)
        arena = ParamArena(model)
        own = arena.snapshot()
        incoming = np.random.default_rng(5).normal(size=arena.num_scalars)
        arena.mix(incoming, own_weight=0.25)
        np.testing.assert_array_equal(
            arena.snapshot(), 0.25 * own + 0.75 * incoming
        )

    def test_size_validation(self):
        arena = ParamArena(_model(0))
        with pytest.raises(ValueError):
            arena.write(np.zeros(3))
        with pytest.raises(ValueError):
            arena.mix(np.zeros(3), own_weight=0.5)

    def test_param_prefix_layout(self):
        model = _model(0)
        arena = ParamArena(model)
        assert arena.param_scalars == model.num_parameters()
        np.testing.assert_array_equal(
            arena.params_flat, _reference_flat(model, include_buffers=False)
        )


class TestArenaAliasing:
    def test_arena_mutation_visible_through_parameters(self):
        model = _model(0)
        arena = ParamArena(model)
        arena.flat[:] = 7.5
        for param in model.parameters():
            assert np.all(param.data == 7.5)
        for _, buf in model.named_buffers():
            assert np.all(buf == 7.5)

    def test_parameter_mutation_visible_through_arena(self):
        model = _model(0)
        arena = ParamArena(model)
        first = model.parameters()[0]
        first.data[...] = -3.0
        assert np.all(arena.flat[: first.data.size] == -3.0)

    def test_aliasing_survives_load_state_dict(self):
        model = _model(0)
        donor = _model(1)
        arena = ParamArena(model)
        views = [p.data for p in model.parameters()]
        model.load_state_dict(donor.state_dict())
        for param, view in zip(model.parameters(), views):
            assert param.data is view  # storage identity preserved
        np.testing.assert_array_equal(arena.read(), _reference_flat(donor))

    def test_aliasing_survives_codec_unflatten(self):
        model = _model(0)
        arena = ParamArena(model)
        codec = FlatParamCodec(model)
        incoming = np.random.default_rng(9).normal(size=codec.num_scalars)
        codec.unflatten(model, incoming)
        np.testing.assert_array_equal(arena.flat, incoming)
        # And through a *foreign* codec (generic in-place path).
        other_codec = FlatParamCodec(_model(2))
        other_codec.unflatten(model, incoming * 2.0)
        np.testing.assert_array_equal(arena.flat, incoming * 2.0)

    def test_aliasing_survives_batchnorm_forward(self):
        model = _model(0)
        arena = ParamArena(model)
        model.train()
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3, 8, 8)))
        model(x)  # BatchNorm updates running stats via set_buffer
        np.testing.assert_array_equal(arena.read(), _reference_flat(model))

    def test_ensure_bound_repairs_external_rebind(self):
        model = _model(0)
        arena = ParamArena(model)
        first = model.parameters()[0]
        first.data = np.full(first.data.shape, 4.0)  # foreign rebind
        flat = arena.read()  # ensure_bound copies the values back in
        assert first.data.base is not None
        assert np.all(flat[: first.data.size] == 4.0)


class TestCachedCodecHelpers:
    def test_one_shot_helpers_reuse_codec(self):
        model = _model(0)
        flat_a = get_flat_params(model)
        flat_b = get_flat_params(model)
        assert model.__dict__["_codec_cache"] is not None
        np.testing.assert_array_equal(flat_a, flat_b)
        assert flat_a is not flat_b  # still snapshot semantics


class TestFusedOptimizerParity:
    def _grads(self, model, seed=11):
        rng = np.random.default_rng(seed)
        for param in model.parameters():
            param.grad = rng.normal(size=param.data.shape)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(lr=0.05),
            dict(lr=0.05, momentum=0.9),
            dict(lr=0.05, momentum=0.9, nesterov=True),
            dict(lr=0.05, weight_decay=1e-3),
            dict(lr=0.05, momentum=0.9, weight_decay=1e-3, nesterov=True),
        ],
    )
    def test_sgd_fused_bitwise_equals_fallback(self, kwargs):
        fused_model, plain_model = _model(0), _model(0)
        ParamArena(fused_model)
        fused = SGD(fused_model.parameters(), **kwargs)
        plain = SGD(plain_model.parameters(), **kwargs)
        plain.fused = False
        for step_seed in range(3):
            self._grads(fused_model, seed=step_seed)
            self._grads(plain_model, seed=step_seed)
            fused.step()
            plain.step()
        np.testing.assert_array_equal(
            _reference_flat(fused_model), _reference_flat(plain_model)
        )

    def test_adam_fused_bitwise_equals_fallback(self):
        fused_model, plain_model = _model(0), _model(0)
        ParamArena(fused_model)
        fused = Adam(fused_model.parameters(), lr=1e-3, weight_decay=1e-4)
        plain = Adam(plain_model.parameters(), lr=1e-3, weight_decay=1e-4)
        plain.fused = False
        for step_seed in range(3):
            self._grads(fused_model, seed=step_seed)
            self._grads(plain_model, seed=step_seed)
            fused.step()
            plain.step()
        np.testing.assert_array_equal(
            _reference_flat(fused_model), _reference_flat(plain_model)
        )

    @pytest.mark.parametrize(
        "make_opt",
        [
            lambda ps: SGD(ps, lr=0.05),
            lambda ps: SGD(ps, lr=0.05, momentum=0.9),
            lambda ps: Adam(ps, lr=1e-3),
        ],
    )
    def test_fallback_casts_narrow_grads_like_fused(self, make_opt):
        # The fused path gathers manually assigned grads into fp64; the
        # per-parameter fallback must do its arithmetic in fp64 too.
        fused_model, plain_model = _model(0), _model(0)
        ParamArena(fused_model)
        fused = make_opt(fused_model.parameters())
        plain = make_opt(plain_model.parameters())
        plain.fused = False
        for step_seed in range(3):
            rng = np.random.default_rng(step_seed)
            for fp, pp in zip(fused_model.parameters(), plain_model.parameters()):
                grad = rng.normal(size=fp.data.shape).astype(np.float32)
                fp.grad = grad
                pp.grad = grad.copy()
            fused.step()
            plain.step()
        np.testing.assert_array_equal(
            _reference_flat(fused_model), _reference_flat(plain_model)
        )

    def test_fused_adopts_arena_built_after_optimizer(self):
        # The cluster constructs the optimizer *before* the Device wraps
        # the model in an arena; the fused path must adopt the rebind.
        model = _model(0)
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        ParamArena(model)
        self._grads(model)
        opt.step()
        flat = opt._flat_params
        assert flat is not None
        assert flat.base is model.arena.flat or flat is model.arena.flat

    def test_fallback_on_missing_grad_skips_param(self):
        model = _model(0)
        ParamArena(model)
        opt = SGD(model.parameters(), lr=0.1)
        self._grads(model)
        first = model.parameters()[0]
        before = first.data.copy()
        first.grad = None
        opt.step()
        np.testing.assert_array_equal(first.data, before)

    def test_end_to_end_training_with_arena(self):
        model = _model(0)
        ParamArena(model)
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
        loss_fn = CrossEntropyLoss()
        rng = np.random.default_rng(0)
        x = rng.normal(size=(16, 3, 8, 8))
        y = rng.integers(0, 10, size=16)
        first_loss = None
        for _ in range(15):
            opt.zero_grad()
            loss = loss_fn(model(Tensor(x)), y)
            loss.backward()
            opt.step()
            if first_loss is None:
                first_loss = float(loss.data)
        assert float(loss.data) < first_loss


def _scalar_offset(view: np.ndarray, base: np.ndarray) -> int:
    """Element offset of ``view``'s storage within the 1-D ``base``."""
    delta = (
        view.__array_interface__["data"][0]
        - base.__array_interface__["data"][0]
    )
    assert delta % base.itemsize == 0
    return delta // base.itemsize


def _backward_once(model, seed=0, batch=8):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(batch, 3, 8, 8))
    y = rng.integers(0, 10, size=batch)
    loss = CrossEntropyLoss()(model(Tensor(x)), y)
    loss.backward()
    return loss


class TestGradArena:
    def test_backward_writes_views_into_grad_flat(self):
        """Every ``param.grad`` is a view into ``grad_flat`` at the same
        offset the parameter occupies in the params prefix — including
        bias parameters, whose gradients arrive through the
        broadcast/unbroadcast path."""
        model = _model(0)
        arena = ParamArena(model)
        _backward_once(model)
        cursor = 0
        for name, param in model.named_parameters():
            grad = param.grad
            assert grad is not None, name
            assert grad.shape == param.data.shape
            assert np.shares_memory(grad, arena.grad_flat), name
            assert _scalar_offset(grad, arena.grad_flat) == cursor, name
            cursor += param.data.size
        assert cursor == arena.param_scalars

    def test_second_backward_accumulates_in_place(self):
        model = _model(0)
        arena = ParamArena(model)
        _backward_once(model, seed=1)
        views = [p.grad for p in model.parameters()]
        single = arena.grad_flat.copy()
        _backward_once(model, seed=1)  # same batch: gradient doubles
        for param, view in zip(model.parameters(), views):
            assert param.grad is view  # accumulated, not reallocated
        np.testing.assert_array_equal(arena.grad_flat, 2.0 * single)

    def test_module_zero_grad_is_single_fill(self):
        model = _model(0)
        arena = ParamArena(model)
        _backward_once(model)
        assert arena.grad_flat.any()
        calls = []
        original = Tensor.zero_grad
        Tensor.zero_grad = lambda self: calls.append(self) or original(self)
        try:
            model.zero_grad()
        finally:
            Tensor.zero_grad = original
        assert calls == []  # regression: no per-param zero_grad calls
        assert not arena.grad_flat.any()
        # Grads stay bound views of zeros; backward accumulates afresh.
        for param in model.parameters():
            assert param.grad is param._grad_view

    def test_unbound_module_keeps_per_param_zero_grad(self):
        model = _model(0)
        _backward_once(model)
        calls = []
        original = Tensor.zero_grad
        Tensor.zero_grad = lambda self: calls.append(self) or original(self)
        try:
            model.zero_grad()
        finally:
            Tensor.zero_grad = original
        assert len(calls) == len(model.parameters())
        assert all(p.grad is None for p in model.parameters())

    def test_optimizer_zero_grad_is_single_fill(self):
        model = _model(0)
        arena = ParamArena(model)
        opt = SGD(model.parameters(), lr=0.1)
        _backward_once(model)
        calls = []
        original = Tensor.zero_grad
        Tensor.zero_grad = lambda self: calls.append(self) or original(self)
        try:
            opt.zero_grad()
        finally:
            Tensor.zero_grad = original
        assert calls == []
        assert not arena.grad_flat.any()

    def test_zero_grad_drops_foreign_grad(self):
        """A manually assigned gradient (foreign storage) must not survive
        the vectorized reset — seed semantics leave it ``None``."""
        model = _model(0)
        arena = ParamArena(model)
        first = model.parameters()[0]
        first.grad = np.ones(first.data.shape)
        model.zero_grad()
        assert first.grad is None
        _backward_once(model)
        assert first.grad is first._grad_view
        assert np.shares_memory(first.grad, arena.grad_flat)

    def test_fused_step_adopts_grads_zero_copy(self):
        """The fused step must read gradients straight off ``grad_flat``:
        no gather scratch is ever allocated and the adopted vector
        aliases the arena's grad storage."""
        model = _model(0)
        arena = ParamArena(model)
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
        for step in range(3):
            opt.zero_grad()
            _backward_once(model, seed=step)
            opt.step()
        assert opt._flat_grad is None  # gather scratch never allocated
        adopted = opt._flat_grad_adopted
        assert adopted is not None
        assert adopted.size == arena.param_scalars
        assert (
            adopted is arena.grad_flat
            or adopted.base is arena.grad_flat
        )

    def test_manual_grads_still_drive_fused_via_gather(self):
        model = _model(0)
        ParamArena(model)
        opt = SGD(model.parameters(), lr=0.05)
        rng = np.random.default_rng(2)
        for param in model.parameters():
            param.grad = rng.normal(size=param.data.shape)
        before = model.parameters()[0].data.copy()
        opt.step()
        assert opt._flat_params is not None  # fused path ran
        assert opt._flat_grad is not None  # via the gather scratch
        assert not np.array_equal(model.parameters()[0].data, before)

    def test_kernels_do_not_mutate_live_gradients(self):
        """``flat_grad`` aliases ``param.grad`` on the arena path, so the
        fused kernels must leave it untouched."""
        for make_opt in (
            lambda ps: SGD(ps, lr=0.05, momentum=0.9, weight_decay=1e-3, nesterov=True),
            lambda ps: Adam(ps, lr=1e-3, weight_decay=1e-3),
        ):
            model = _model(0)
            arena = ParamArena(model)
            opt = make_opt(model.parameters())
            opt.zero_grad()
            _backward_once(model)
            before = arena.grad_flat.copy()
            opt.step()
            np.testing.assert_array_equal(arena.grad_flat, before)

    @pytest.mark.parametrize(
        "make_opt",
        [
            lambda ps: SGD(ps, lr=0.05),
            lambda ps: SGD(ps, lr=0.05, momentum=0.9),
            lambda ps: SGD(ps, lr=0.05, momentum=0.9, weight_decay=1e-3, nesterov=True),
            lambda ps: Adam(ps, lr=1e-3),
            lambda ps: Adam(ps, lr=1e-3, weight_decay=1e-4),
        ],
    )
    def test_real_backward_trajectories_bitwise_equal(self, make_opt):
        """Grad-arena fused vs arena fallback vs fully unbound (seed
        allocate-on-accumulate) training: identical losses and final
        parameters, bit for bit."""

        def run(mode):
            model = _model(0)
            ParamArena(model, bind_grads=(mode != "unbound"))
            opt = make_opt(model.parameters())
            if mode == "fallback":
                opt.fused = False
            losses = []
            for step in range(5):
                opt.zero_grad()
                loss = _backward_once(model, seed=step)
                opt.step()
                losses.append(float(loss.data))
            return losses, _reference_flat(model)

        ref_losses, ref_flat = run("fused")
        for mode in ("fallback", "unbound"):
            losses, flat = run(mode)
            assert losses == ref_losses, mode
            np.testing.assert_array_equal(flat, ref_flat)

    def test_unbound_arena_has_no_grad_vector(self):
        model = _model(0)
        arena = ParamArena(model, bind_grads=False)
        assert arena.grad_flat is None
        assert not arena.zero_grads()
        _backward_once(model)
        for param in model.parameters():
            assert param._grad_view is None
            assert param.grad is not None
            assert param.grad.base is None  # freshly allocated, seed-style
