"""Hot-path regression guards: trajectory identity + perf smoke run.

The arena/fused refactor must be *invisible* to the training dynamics:
a fixed-seed ``HADFLTrainer.run()`` produces bitwise-identical
``RoundRecord`` losses whether devices run on the arena + fused kernels
or on the seed (pre-arena) codec path re-implemented in
``benchmarks/bench_hotpath.py``.  The perf-marked smoke test additionally
runs the microbench at reduced repeats and sanity-checks the speedups.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import bench_hotpath  # noqa: E402  (needs the path insert above)

from repro.experiments import ExperimentConfig, run_scheme  # noqa: E402
from repro.optim.base import Optimizer  # noqa: E402


def _config():
    return ExperimentConfig(
        model="mlp", num_train=256, num_test=128, image_size=8,
        target_epochs=3.0, seed=41,
    )


def _losses(result):
    return [r.train_loss for r in result.rounds]


def _run_with_fallback_optimizers(legacy_codec_path: bool):
    """One fixed-seed run on the seed-equivalent slow paths."""
    try:
        Optimizer.fused = False
        if legacy_codec_path:
            with bench_hotpath.legacy_device_paths():
                return run_scheme("hadfl", _config())
        return run_scheme("hadfl", _config())
    finally:
        Optimizer.fused = True


class TestTrajectoryRegression:
    def test_arena_run_bitwise_matches_seed_path(self):
        """Stock (arena + fused) vs full seed emulation: per-parameter
        codec round-trips and per-parameter optimizer loops."""
        stock = run_scheme("hadfl", _config())
        legacy = _run_with_fallback_optimizers(legacy_codec_path=True)
        assert _losses(stock), "run produced no rounds"
        assert _losses(stock) == _losses(legacy)
        np.testing.assert_array_equal(stock.times(), legacy.times())

    def test_fused_kernels_bitwise_match_fallback(self):
        """Same run with only the fused kernels disabled (arena kept)."""
        stock = run_scheme("hadfl", _config())
        fallback = _run_with_fallback_optimizers(legacy_codec_path=False)
        assert _losses(stock) == _losses(fallback)
        np.testing.assert_array_equal(stock.times(), fallback.times())


@pytest.mark.perf
class TestHotpathBench:
    def test_microbench_speedups(self, tmp_path, monkeypatch):
        monkeypatch.setattr(bench_hotpath, "RESULTS_DIR", tmp_path)
        results = bench_hotpath.run(repeats=2)
        # Lenient floors (CI machines are noisy); the dedicated
        # run_bench.py artefact records the real numbers.
        assert results["codec_roundtrip"]["speedup"] > 2.0
        assert results["sgd_step"]["speedup"] > 1.2
        assert results["adam_step"]["speedup"] > 1.2
        # Grad arena: the zero-copy step must beat the gather-based seed
        # step, and the real-backward trajectories must stay bitwise.
        assert results["grad_path"]["speedup"] > 1.2
        assert results["grad_path"]["losses_bitwise_equal"]
        assert results["hadfl_round"]["losses_bitwise_equal"]
        assert (tmp_path / "hotpath.json").exists()
