"""Hypothesis property tests for the autograd engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays, array_shapes

from repro.autograd import Tensor, softmax
from repro.autograd.tensor import unbroadcast

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def small_arrays(max_dims=3, max_side=4):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, max_side=max_side),
        elements=finite_floats,
    )


class TestGradientLinearity:
    @given(small_arrays(), st.floats(min_value=-5, max_value=5, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_grad_scales_linearly(self, data, scale):
        """d(c * sum(x))/dx == c everywhere."""
        x = Tensor(data, requires_grad=True)
        (x.sum() * scale).backward()
        np.testing.assert_allclose(x.grad, np.full(data.shape, scale), atol=1e-10)

    @given(small_arrays())
    @settings(max_examples=50, deadline=None)
    def test_sum_of_two_paths_adds_gradients(self, data):
        x = Tensor(data, requires_grad=True)
        (x.sum() + x.sum()).backward()
        np.testing.assert_allclose(x.grad, np.full(data.shape, 2.0), atol=1e-10)

    @given(small_arrays())
    @settings(max_examples=50, deadline=None)
    def test_mean_gradient_is_uniform(self, data):
        x = Tensor(data, requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(
            x.grad, np.full(data.shape, 1.0 / data.size), atol=1e-12
        )


class TestUnbroadcastProperties:
    @given(small_arrays())
    @settings(max_examples=50, deadline=None)
    def test_gradient_sum_preserved(self, data):
        """Unbroadcasting conserves the total gradient mass."""
        grad = np.ones((3,) + data.shape)
        reduced = unbroadcast(grad, data.shape)
        assert reduced.shape == data.shape
        np.testing.assert_allclose(reduced.sum(), grad.sum())

    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
            elements=finite_floats,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_broadcast_add_grad_consistency(self, data):
        """Gradient of broadcast add equals column-sum of output grad."""
        row = Tensor(np.zeros(data.shape[1]), requires_grad=True)
        x = Tensor(data)
        (x + row).sum().backward()
        np.testing.assert_allclose(row.grad, np.full(data.shape[1], data.shape[0]))


class TestSoftmaxProperties:
    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 5), st.integers(2, 6)),
            elements=finite_floats,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_rows_sum_to_one(self, logits):
        out = softmax(Tensor(logits), axis=1).data
        np.testing.assert_allclose(out.sum(axis=1), np.ones(len(logits)), atol=1e-9)
        assert (out >= 0).all()

    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 5), st.integers(2, 6)),
            elements=finite_floats,
        ),
        st.floats(min_value=-50, max_value=50, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_shift_invariance(self, logits, shift):
        a = softmax(Tensor(logits), axis=1).data
        b = softmax(Tensor(logits + shift), axis=1).data
        np.testing.assert_allclose(a, b, atol=1e-9)


class TestMatmulProperties:
    @given(
        st.integers(1, 4), st.integers(1, 4), st.integers(1, 4),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_matmul_grad_shapes(self, m, k, n, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        a = Tensor(rng.normal(size=(m, k)), requires_grad=True)
        b = Tensor(rng.normal(size=(k, n)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (m, k)
        assert b.grad.shape == (k, n)
        # Analytic: dL/da = ones(m,n) @ b.T
        np.testing.assert_allclose(a.grad, np.ones((m, n)) @ b.data.T, atol=1e-10)
