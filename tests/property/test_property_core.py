"""Hypothesis property tests for HADFL core algorithms."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.core import VersionPredictor, hyperperiod
from repro.core.selection import (
    GaussianQuartileSelection,
    gaussian_quartile_probabilities,
)

version_dicts = st.dictionaries(
    keys=st.integers(min_value=0, max_value=50),
    values=st.floats(min_value=0, max_value=1e4, allow_nan=False),
    min_size=1,
    max_size=12,
)


class TestSelectionProbabilityLaw:
    @given(version_dicts)
    @settings(max_examples=80, deadline=None)
    def test_valid_distribution(self, versions):
        probs = gaussian_quartile_probabilities(versions)
        assert abs(sum(probs.values()) - 1.0) < 1e-9
        assert all(p >= 0 for p in probs.values())
        assert set(probs) == set(versions)

    @given(version_dicts, st.floats(min_value=-100, max_value=100, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_shift_invariance(self, versions, shift):
        """Adding a constant to every version cannot change the law —
        only relative staleness matters.

        The invariance holds in exact arithmetic; in fp64 the shift
        itself quantises away spreads near the magnitude's ulp (e.g. a
        1e-119 spread shifted by 1.0 collapses to zero), so examples
        whose spread the shift cannot represent are excluded and the
        tolerance covers the surviving rounding of ~ulp(|shift|)/spread.
        """
        values = list(versions.values())
        spread = max(values) - min(values)
        assume(spread == 0.0 or spread >= 1e-3)
        shifted = {k: v + shift for k, v in versions.items()}
        a = gaussian_quartile_probabilities(versions)
        b = gaussian_quartile_probabilities(shifted)
        for key in a:
            assert abs(a[key] - b[key]) < 1e-6

    @given(version_dicts, st.floats(min_value=0.1, max_value=50, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_scale_invariance(self, versions, scale):
        scaled = {k: v * scale for k, v in versions.items()}
        a = gaussian_quartile_probabilities(versions)
        b = gaussian_quartile_probabilities(scaled)
        for key in a:
            assert abs(a[key] - b[key]) < 1e-9

    @given(version_dicts, st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_selection_returns_valid_subset(self, versions, num_selected):
        policy = GaussianQuartileSelection()
        chosen = policy.select(versions, num_selected, np.random.default_rng(0))
        assert len(chosen) == min(num_selected, len(versions))
        assert len(set(chosen)) == len(chosen)
        assert all(c in versions for c in chosen)


class TestHyperperiodProperties:
    durations = st.lists(
        st.floats(min_value=0.01, max_value=100, allow_nan=False),
        min_size=1,
        max_size=6,
    )

    @given(durations)
    @settings(max_examples=80, deadline=None)
    def test_at_least_max_duration(self, times):
        assert hyperperiod(times) >= max(times) - 1e-9

    @given(durations)
    @settings(max_examples=80, deadline=None)
    def test_bounded_by_cap(self, times):
        result = hyperperiod(times, max_multiple=16.0)
        assert result <= 16.0 * max(times) + 1e-9

    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_integer_ratios_exact_lcm(self, a, b):
        result = hyperperiod([float(a), float(b)], quantum=1.0, max_multiple=1e9)
        assert result == np.lcm(a, b)

    @given(durations)
    @settings(max_examples=40, deadline=None)
    def test_permutation_invariant(self, times):
        forward = hyperperiod(times)
        backward = hyperperiod(list(reversed(times)))
        assert forward == backward


class TestPredictorProperties:
    @given(
        st.floats(min_value=0, max_value=1000, allow_nan=False),
        st.integers(min_value=1, max_value=30),
        st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_constant_series_fixed_point(self, level, repeats, alpha):
        """A constant observation stream is a fixed point of Eq. 7."""
        predictor = VersionPredictor(alpha=alpha)
        for _ in range(repeats):
            predictor.observe(0, level)
        assert abs(predictor.predict(0) - level) < 1e-6

    @given(
        st.floats(min_value=0.1, max_value=50, allow_nan=False),
        st.floats(min_value=0.2, max_value=0.8),
    )
    @settings(max_examples=40, deadline=None)
    def test_linear_series_trend_recovers_slope(self, slope, alpha):
        predictor = VersionPredictor(alpha=alpha)
        for j in range(300):
            predictor.observe(0, slope * j)
        assert abs(predictor.trend(0) - slope) < 0.05 * slope + 1e-6

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
        st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_forecast_within_observation_envelope(self, series, alpha):
        """One-step forecasts stay within a generous envelope of the
        observed range (no numerical explosion)."""
        predictor = VersionPredictor(alpha=alpha)
        for value in series:
            predictor.observe(0, value)
        lo, hi = min(series), max(series)
        margin = 20 * (hi - lo) + 1.0
        assert lo - margin <= predictor.predict(0) <= hi + margin
