"""Hypothesis property tests for collectives, partitioning, codecs."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.comm import get_flat_params, ring_allreduce, set_flat_params
from repro.comm.allreduce import ring_allreduce_buffers
from repro.comm.topology import directed_ring
from repro.data.partition import partition_iid, partition_proportional
from repro.nn import models

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestAllReduceProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=40),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_equals_numpy_mean(self, k, n, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        vectors = [rng.normal(size=n) for _ in range(k)]
        np.testing.assert_allclose(
            ring_allreduce(vectors), np.mean(vectors, axis=0), atol=1e-9
        )

    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=30),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_nodes_agree(self, k, n, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        buffers = ring_allreduce_buffers([rng.normal(size=n) for _ in range(k)])
        for buf in buffers[1:]:
            np.testing.assert_allclose(buf, buffers[0], atol=1e-9)

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_idempotent_on_identical_inputs(self, k, n):
        vectors = [np.full(n, 3.5) for _ in range(k)]
        np.testing.assert_allclose(ring_allreduce(vectors), np.full(n, 3.5), atol=1e-12)


class TestPartitionProperties:
    @given(
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=1, max_value=10),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_iid_disjoint_cover(self, n, k, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        parts = partition_iid(n, k, rng=rng)
        combined = np.concatenate(parts) if parts else np.array([])
        assert len(combined) == n
        assert len(np.unique(combined)) == n
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    @given(
        st.integers(min_value=10, max_value=300),
        st.lists(st.floats(min_value=0.1, max_value=10), min_size=1, max_size=6),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_proportional_disjoint_cover_exact_total(self, n, props, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        parts = partition_proportional(n, props, rng=rng)
        combined = np.concatenate(parts)
        assert len(combined) == n
        assert len(np.unique(combined)) == n


class TestRingTopologyProperties:
    @given(st.integers(min_value=2, max_value=12), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_ring_traversal_visits_all_once(self, k, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        ids = list(rng.choice(1000, size=k, replace=False))
        topo = directed_ring(ids, rng=rng)
        order = topo.ring_order()
        assert sorted(order) == sorted(int(i) for i in ids)

    @given(st.integers(min_value=2, max_value=10), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_every_node_has_unique_neighbours(self, k, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        topo = directed_ring(range(k), rng=rng)
        for node in topo.nodes:
            assert topo.upstream(topo.downstream(node)) == node


class TestCodecProperties:
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=2, max_value=8),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_flatten_unflatten_roundtrip(self, in_dim, hidden, classes, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        model = models.MLP(in_dim, (hidden,), classes, rng=rng)
        flat = get_flat_params(model)
        perturbed = flat + 1.0
        set_flat_params(model, perturbed)
        np.testing.assert_allclose(get_flat_params(model), perturbed)
