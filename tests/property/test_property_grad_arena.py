"""Hypothesis property tests for the grad arena.

Contract (see ``repro/comm/params.py``): after ``loss.backward()`` on an
arena-backed model, every ``param.grad`` is a view into the arena's flat
gradient vector — shared base, offsets matching the parameter's position
in the ``named_parameters()`` prefix — for arbitrary architectures,
including ops that route gradients through the broadcast/unbroadcast
path (bias adds) and through bound-view accumulation on a second
backward.  Bound and unbound accumulation must produce equal gradients.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.autograd import Tensor
from repro.comm.params import ParamArena
from repro.nn.losses import CrossEntropyLoss, MSELoss


def _scalar_offset(view: np.ndarray, base: np.ndarray) -> int:
    delta = (
        view.__array_interface__["data"][0]
        - base.__array_interface__["data"][0]
    )
    assert delta % base.itemsize == 0
    return delta // base.itemsize


def _mlp(widths, seed):
    rng = np.random.default_rng(seed)
    layers = []
    for fan_in, fan_out in zip(widths[:-1], widths[1:]):
        layers.append(nn.Linear(fan_in, fan_out, rng=rng))
        layers.append(nn.ReLU())
    return nn.Sequential(*layers[:-1])  # drop trailing activation


mlp_shapes = st.lists(st.integers(min_value=1, max_value=6), min_size=2, max_size=4)


class TestGradArenaAliasing:
    @given(widths=mlp_shapes, seed=st.integers(0, 2**16), batch=st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_backward_lands_in_grad_flat(self, widths, seed, batch):
        model = _mlp(widths, seed)
        arena = ParamArena(model)
        rng = np.random.default_rng(seed + 1)
        x = rng.normal(size=(batch, widths[0]))
        y = rng.normal(size=(batch, widths[-1]))
        MSELoss()(model(Tensor(x)), y).backward()
        cursor = 0
        for name, param in model.named_parameters():
            grad = param.grad
            assert grad is not None, name
            assert grad.shape == param.data.shape, name
            assert np.shares_memory(grad, arena.grad_flat), name
            assert _scalar_offset(grad, arena.grad_flat) == cursor, name
            cursor += param.data.size
        assert cursor == arena.param_scalars == arena.grad_flat.size

    @given(widths=mlp_shapes, seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_second_backward_accumulates_not_overwrites(self, widths, seed):
        model = _mlp(widths, seed)
        arena = ParamArena(model)
        rng = np.random.default_rng(seed + 2)
        x = rng.normal(size=(3, widths[0]))
        y = rng.normal(size=(3, widths[-1]))

        def backward():
            MSELoss()(model(Tensor(x)), y).backward()

        backward()
        views = [p.grad for p in model.parameters()]
        single = arena.grad_flat.copy()
        backward()
        for param, view in zip(model.parameters(), views):
            assert param.grad is view
        np.testing.assert_array_equal(arena.grad_flat, 2.0 * single)
        model.zero_grad()
        assert not arena.grad_flat.any()
        backward()
        np.testing.assert_array_equal(arena.grad_flat, single)

    @given(
        widths=mlp_shapes,
        seed=st.integers(0, 2**16),
        num_classes=st.integers(2, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_bound_accumulation_equals_unbound(self, widths, seed, num_classes):
        """The grad arena never changes gradient *values* — broadcast
        bias gradients included — only where they live."""
        rng = np.random.default_rng(seed + 3)
        x = rng.normal(size=(4, widths[0]))
        y = rng.integers(0, num_classes, size=4)

        def grads(bind):
            model = _mlp(widths + [num_classes], seed)
            ParamArena(model, bind_grads=bind)
            CrossEntropyLoss()(model(Tensor(x)), y).backward()
            return [p.grad.copy() for p in model.parameters()]

        for bound, unbound in zip(grads(True), grads(False)):
            np.testing.assert_array_equal(bound, unbound)
