"""Hypothesis property tests for data loading, cycling, and transforms."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data import ArrayDataset, BatchCycler, DataLoader
from repro.data.transforms import compose, gaussian_noise, random_crop, random_horizontal_flip


def _dataset(n):
    return ArrayDataset(np.arange(n, dtype=float).reshape(n, 1), np.arange(n))


class TestLoaderProperties:
    @given(st.integers(1, 200), st.integers(1, 64), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_epoch_yields_every_sample_exactly_once(self, n, batch_size, shuffle):
        loader = DataLoader(
            _dataset(n), batch_size=batch_size, shuffle=shuffle,
            rng=np.random.default_rng(0),
        )
        seen = np.concatenate([labels for _, labels in loader])
        assert sorted(seen.tolist()) == list(range(n))

    @given(st.integers(1, 200), st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_drop_last_yields_full_batches_only(self, n, batch_size):
        loader = DataLoader(
            _dataset(n), batch_size=batch_size, drop_last=True,
            rng=np.random.default_rng(0),
        )
        for _, labels in loader:
            assert len(labels) == batch_size

    @given(st.integers(2, 100), st.integers(1, 32), st.integers(1, 50))
    @settings(max_examples=60, deadline=None)
    def test_cycler_consumption_accounting(self, n, batch_size, pulls):
        cycler = BatchCycler(_dataset(n), batch_size, rng=np.random.default_rng(0))
        for _ in range(pulls):
            cycler.next_batch()
        assert cycler.samples_consumed == pulls * cycler.batch_size
        assert cycler.epochs_consumed == cycler.samples_consumed / n


class TestTransformProperties:
    images = st.integers(1, 8).flatmap(
        lambda n: st.integers(2, 6).map(
            lambda s: np.random.default_rng(n * 100 + s).normal(size=(n, 3, 2 * s, 2 * s))
        )
    )

    @given(images)
    @settings(max_examples=40, deadline=None)
    def test_flip_is_involution(self, batch):
        flip = random_horizontal_flip(1.0)
        rng = np.random.default_rng(0)
        twice = flip(flip(batch, rng), rng)
        np.testing.assert_array_equal(twice, batch)

    @given(images, st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_crop_preserves_shape_and_value_range(self, batch, padding):
        out = random_crop(padding)(batch, np.random.default_rng(0))
        assert out.shape == batch.shape
        # Reflect padding introduces no values outside the original range.
        assert out.max() <= batch.max() + 1e-12
        assert out.min() >= batch.min() - 1e-12

    @given(images)
    @settings(max_examples=40, deadline=None)
    def test_zero_noise_is_identity(self, batch):
        out = gaussian_noise(0.0)(batch, np.random.default_rng(0))
        np.testing.assert_array_equal(out, batch)

    @given(images)
    @settings(max_examples=40, deadline=None)
    def test_compose_associates(self, batch):
        a = random_horizontal_flip(1.0)
        b = gaussian_noise(0.0)
        left = compose(compose(a, b), a)(batch, np.random.default_rng(0))
        right = compose(a, compose(b, a))(batch, np.random.default_rng(0))
        np.testing.assert_array_equal(left, right)
