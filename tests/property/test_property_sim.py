"""Hypothesis property tests for the simulation layer."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim import FailureInjector, NetworkModel, Simulator
from repro.sim.network import HeterogeneousNetworkModel


class TestSimulatorProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_events_execute_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=2,
            max_size=30,
        ),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_cancelled_events_never_run(self, delays, data):
        sim = Simulator()
        ran = []
        handles = [
            sim.schedule(delay, lambda i=i: ran.append(i))
            for i, delay in enumerate(delays)
        ]
        to_cancel = data.draw(
            st.sets(st.integers(0, len(delays) - 1), max_size=len(delays))
        )
        for index in to_cancel:
            handles[index].cancel()
        sim.run()
        assert set(ran) == set(range(len(delays))) - to_cancel

    @given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_clock_never_moves_backwards(self, horizon):
        sim = Simulator()
        sim.schedule(horizon / 2 if horizon else 0.0, lambda: None)
        sim.run(until=horizon)
        assert sim.now <= max(horizon, horizon / 2) + 1e-9
        assert sim.now >= 0


class TestNetworkProperties:
    @given(
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        st.integers(min_value=2, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_ring_time_monotone_in_nodes_for_latency_regimes(self, nbytes, k):
        """Adding a node to a ring never makes it faster when latency
        dominates, and the formula is always non-negative."""
        net = NetworkModel(latency=1e-2, bandwidth=1e12)
        smaller = net.ring_allreduce_time(nbytes, k)
        larger = net.ring_allreduce_time(nbytes, k + 1)
        assert larger >= smaller >= 0

    @given(
        st.floats(min_value=1.0, max_value=1e9, allow_nan=False),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=60, deadline=None)
    def test_p2p_scales_linearly_in_bytes(self, nbytes, factor):
        net = NetworkModel(latency=0.0, bandwidth=1e6)
        assert net.p2p_time(nbytes * factor) == np.float64(
            nbytes * factor
        ) / 1e6

    @given(
        st.dictionaries(
            st.integers(0, 10),
            st.floats(min_value=1e3, max_value=1e9, allow_nan=False),
            min_size=2,
            max_size=8,
        ),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_heterogeneous_ring_gated_by_slowest(self, bandwidths, nbytes):
        """A mixed ring is never faster than the same-size ring built
        entirely from its best link, and never slower than one built
        entirely from its worst link."""
        net = HeterogeneousNetworkModel(
            latency=1e-3, bandwidth=1e9, device_bandwidth=bandwidths
        )
        ids = sorted(bandwidths)
        full = net.ring_time_for(ids, nbytes)
        best = NetworkModel(latency=1e-3, bandwidth=max(bandwidths.values()))
        worst = NetworkModel(latency=1e-3, bandwidth=min(bandwidths.values()))
        assert full >= best.ring_allreduce_time(nbytes, len(ids)) - 1e-12
        assert full <= worst.ring_allreduce_time(nbytes, len(ids)) + 1e-12


class TestFailureInjectorProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e3, allow_nan=False),
                st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
            ),
            min_size=0,
            max_size=10,
        ),
        st.floats(min_value=0, max_value=2e3, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_alive_iff_no_window_covers(self, windows, probe):
        injector = FailureInjector()
        for down_at, duration in windows:
            injector.fail(0, down_at, down_at + duration)
        expected = not any(
            down <= probe < down + dur for down, dur in windows
        )
        assert injector.is_alive(0, probe) == expected

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e3, allow_nan=False),
                st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
            ),
            min_size=1,
            max_size=10,
        ),
        st.floats(min_value=0, max_value=2e3, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_next_down_time_is_correct_infimum(self, windows, from_time):
        injector = FailureInjector()
        for down_at, duration in windows:
            injector.fail(0, down_at, down_at + duration)
        result = injector.next_down_time(0, from_time)
        if not injector.is_alive(0, from_time):
            assert result == from_time
        else:
            future = [d for d, _ in windows if d >= from_time]
            expected = min(future) if future else float("inf")
            assert result == expected
