"""Hypothesis properties of the quantised wire formats.

The round-trip contract every codec must satisfy on arbitrary payloads:

* decode(encode(x)) returns fp64 with the input's shape;
* the reconstruction error respects the format's bound — one per-chunk
  scale step for ``int8_sr``, one per-bucket grid step for ``qsgd``,
  and exact-on-survivors / bounded-by-the-k-th-magnitude for ``topk``;
* ``transmit`` is deterministic under a fixed format seed (the
  content-derived RNG has no hidden stream position);
* the priced payload size follows the format's published law.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.comm.quantise import (
    Int8SRWireFormat,
    QSGDWireFormat,
    TopKWireFormat,
)

finite = st.floats(
    min_value=-1e6,
    max_value=1e6,
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=False,
)

payloads = arrays(
    dtype=np.float64, shape=st.integers(min_value=1, max_value=400),
    elements=finite,
)


class TestInt8SRProperties:
    @given(payloads, st.integers(min_value=1, max_value=64))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_shape_dtype_and_error_bound(self, vec, chunk):
        fmt = Int8SRWireFormat(chunk_size=chunk)
        received = fmt.transmit(vec)
        assert received.dtype == np.float64
        assert received.shape == vec.shape
        for start in range(0, vec.size, chunk):
            part = vec[start : start + chunk]
            scale = np.abs(part).max() / fmt.LEVELS
            err = np.abs(part - received[start : start + chunk]).max()
            assert err <= scale * (1 + 1e-12) + 1e-300

    @given(payloads, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_deterministic_under_fixed_seed(self, vec, seed):
        fmt = Int8SRWireFormat(seed=seed)
        np.testing.assert_array_equal(fmt.transmit(vec), fmt.transmit(vec))

    @given(payloads)
    @settings(max_examples=60, deadline=None)
    def test_payload_size_law(self, vec):
        fmt = Int8SRWireFormat(chunk_size=32)
        chunks = -(-vec.size // 32)
        assert fmt.payload_nbytes(vec) == vec.size + chunks * 8


class TestQSGDProperties:
    @given(
        payloads,
        st.sampled_from([2, 4, 8]),
        st.integers(min_value=1, max_value=128),
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_error_within_grid_step(self, vec, bits, bucket):
        fmt = QSGDWireFormat(bits=bits, bucket_size=bucket)
        received = fmt.transmit(vec)
        assert received.dtype == np.float64
        assert received.shape == vec.shape
        for start in range(0, vec.size, bucket):
            part = vec[start : start + bucket]
            norm = np.float64(np.float32(np.abs(part).max()))
            err = np.abs(part - received[start : start + bucket]).max()
            # A bucket whose norm underflows fp32 decodes to zero; its
            # error is then bounded by the smallest fp32 normal.
            assert err <= norm / fmt.levels * (1 + 1e-6) + np.finfo(np.float32).tiny

    @given(payloads, st.sampled_from([2, 4, 8]))
    @settings(max_examples=60, deadline=None)
    def test_deterministic_under_fixed_seed(self, vec, bits):
        fmt = QSGDWireFormat(bits=bits)
        np.testing.assert_array_equal(fmt.transmit(vec), fmt.transmit(vec))


class TestTopKProperties:
    @given(
        payloads,
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_survivors_exact_dropped_bounded(self, vec, fraction):
        fmt = TopKWireFormat(fraction)
        received = fmt.transmit(vec)
        assert received.dtype == np.float64
        assert received.shape == vec.shape
        k = fmt.k_for(vec.size)
        kept = np.flatnonzero(received)
        assert len(kept) <= k  # fp32-cast survivors may themselves be 0
        # Survivors round-trip through fp32 exactly.
        payload = fmt.encode(vec)
        np.testing.assert_array_equal(
            received[payload.indices],
            vec[payload.indices].astype(np.float32).astype(np.float64),
        )
        # Every dropped entry is bounded by the smallest kept magnitude.
        dropped = np.setdiff1d(np.arange(vec.size), payload.indices)
        if dropped.size and payload.indices.size:
            assert (
                np.abs(vec[dropped]).max()
                <= np.abs(vec[payload.indices]).min() + 1e-300
            )

    @given(payloads, st.floats(min_value=0.01, max_value=1.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_deterministic_and_size_law(self, vec, fraction):
        fmt = TopKWireFormat(fraction)
        np.testing.assert_array_equal(fmt.transmit(vec), fmt.transmit(vec))
        assert fmt.payload_nbytes(vec) == 8 + fmt.k_for(vec.size) * 8

    @given(payloads, st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_delta_shipping_reconstructs_around_reference(self, vec, rnd):
        """reference + decode(topk(vec - reference)) never drifts farther
        from vec than the largest dropped delta component."""
        fmt = TopKWireFormat(0.25)
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        reference = vec + rng.normal(scale=0.1, size=vec.shape)
        received, err = fmt.transmit_delta_with_error(vec, reference)
        assert np.abs(received - vec).max() <= err + 1e-6 * (
            1 + np.abs(vec).max()
        )
