"""Hypothesis properties of the replica-batched (fleet) kernels.

The fleet contract: every batched kernel computes *per replica slice*,
so stacking D replicas into one forward/backward is bitwise identical to
looping them serially — over arbitrary shapes, replica counts, input
dtypes, broadcast bias gradients, and per-replica dropout streams.
These properties fuzz that contract at the op level (``fleet_conv2d``,
``fleet_softmax_cross_entropy``) and through the ``FleetModule`` handler
path (linear layers, dropout masks, whole-MLP training steps).
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor, softmax_cross_entropy
from repro.autograd.ops import conv2d, fleet_conv2d, fleet_softmax_cross_entropy
from repro.comm.params import FleetArena, ParamArena
from repro.nn.fleet import FleetModule
from repro.nn.layers import Dropout, Linear, ReLU, Sequential
from repro.nn.models.mlp import MLP
from repro.optim.sgd import SGD

finite = st.floats(
    min_value=-10.0,
    max_value=10.0,
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=False,
)


def _bitwise(a, b):
    np.testing.assert_array_equal(np.asarray(a), np.asarray(b))
    assert np.asarray(a).tobytes() == np.asarray(b).tobytes()


# ---------------------------------------------------------------------- #
class TestLinearFleetProperties:
    @given(
        data=st.data(),
        d=st.integers(min_value=1, max_value=5),
        n=st.integers(min_value=1, max_value=6),
        fin=st.integers(min_value=1, max_value=7),
        fout=st.integers(min_value=1, max_value=7),
        bias=st.booleans(),
        x32=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_batched_linear_fwd_bwd_bitwise(self, data, d, n, fin, fout, bias, x32):
        """One batched linear == D serial linears, incl. the broadcast
        bias gradient (summed over the batch axis per replica)."""
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
        serial = [Linear(fin, fout, bias=bias, rng=rng) for _ in range(d)]
        fleet = [Linear(fin, fout, bias=bias, rng=np.random.default_rng(0))
                 for _ in range(d)]
        for src, dst in zip(serial, fleet):
            dst.weight.data[...] = src.weight.data
            if bias:
                src.bias.data[...] = rng.normal(size=fout)
                dst.bias.data[...] = src.bias.data
        arenas = [ParamArena(m) for m in fleet]
        stack_arena = FleetArena(arenas)
        module = FleetModule(fleet, stack_arena.stack, arenas[0].layout(),
                             grad_stack=stack_arena.grad_stack)
        dtype = np.float32 if x32 else np.float64
        x = rng.normal(size=(d, n, fin)).astype(dtype)
        g = rng.normal(size=(d, n, fout))
        try:
            module.sync_grad_liveness(d)
            xt = Tensor(np.asarray(x, dtype=np.float64), requires_grad=True)
            out = module.forward(xt, count=d, stacked=True)
            out.backward(g)
            module.adopt_member_grads(d)
            for k in range(d):
                ref_x = Tensor(np.asarray(x[k], dtype=np.float64),
                               requires_grad=True)
                ref_out = serial[k](ref_x)
                ref_out.backward(g[k])
                _bitwise(ref_out.data, out.data[k])
                _bitwise(ref_x.grad, xt.grad[k])
                _bitwise(serial[k].weight.grad, fleet[k].weight.grad)
                if bias:
                    _bitwise(serial[k].bias.grad, fleet[k].bias.grad)
        finally:
            stack_arena.release()


class TestConvFleetProperties:
    @given(
        data=st.data(),
        d=st.integers(min_value=1, max_value=3),
        n=st.integers(min_value=1, max_value=3),
        c_in=st.integers(min_value=1, max_value=3),
        c_out=st.integers(min_value=1, max_value=3),
        kernel=st.integers(min_value=1, max_value=3),
        stride=st.integers(min_value=1, max_value=2),
        padding=st.integers(min_value=0, max_value=1),
        bias=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_batched_conv_fwd_bwd_bitwise(
        self, data, d, n, c_in, c_out, kernel, stride, padding, bias
    ):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
        h = w = kernel + data.draw(st.integers(0, 3))
        x = rng.normal(size=(d, n, c_in, h, w))
        weight = rng.normal(size=(d, c_out, c_in, kernel, kernel))
        b = rng.normal(size=(d, c_out)) if bias else None

        xt = Tensor(x, requires_grad=True)
        wt = Tensor(weight, requires_grad=True)
        bt = Tensor(b, requires_grad=True) if bias else None
        out = fleet_conv2d(xt, wt, bt, stride=stride, padding=padding)
        g = rng.normal(size=out.shape)
        out.backward(g)

        for k in range(d):
            rx = Tensor(x[k], requires_grad=True)
            rw = Tensor(weight[k], requires_grad=True)
            rb = Tensor(b[k], requires_grad=True) if bias else None
            ref = conv2d(rx, rw, rb, stride=stride, padding=padding)
            ref.backward(g[k])
            _bitwise(ref.data, out.data[k])
            _bitwise(rx.grad, xt.grad[k])
            _bitwise(rw.grad, wt.grad[k])
            if bias:
                _bitwise(rb.grad, bt.grad[k])

    @given(
        data=st.data(),
        d=st.integers(min_value=2, max_value=4),
        n=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_shared_input_conv_sums_x_grad_over_replicas(self, data, d, n):
        """Shared (N, C, H, W) input: the x gradient is the sum of every
        replica's contribution, bitwise equal to serial accumulation."""
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
        x = rng.normal(size=(n, 2, 5, 5))
        weight = rng.normal(size=(d, 3, 2, 3, 3))

        xt = Tensor(x, requires_grad=True)
        wt = Tensor(weight, requires_grad=True)
        out = fleet_conv2d(xt, wt, None, stride=1, padding=1)
        g = rng.normal(size=out.shape)
        out.backward(g)

        rx = Tensor(x, requires_grad=True)
        for k in range(d):
            rw = Tensor(weight[k], requires_grad=True)
            ref = conv2d(rx, rw, None, stride=1, padding=1)
            ref.backward(g[k])
            _bitwise(ref.data, out.data[k])
            _bitwise(rw.grad, wt.grad[k])
        _bitwise(rx.grad, xt.grad)


class TestCrossEntropyFleetProperties:
    @given(
        data=st.data(),
        d=st.integers(min_value=1, max_value=6),
        n=st.integers(min_value=1, max_value=8),
        c=st.integers(min_value=2, max_value=7),
    )
    @settings(max_examples=50, deadline=None)
    def test_batched_ce_fwd_bwd_bitwise(self, data, d, n, c):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
        logits = rng.normal(size=(d, n, c)) * 5.0
        targets = rng.integers(0, c, size=(d, n))
        scale = rng.normal(size=d)

        lt = Tensor(logits, requires_grad=True)
        loss = fleet_softmax_cross_entropy(lt, targets)
        assert loss.shape == (d,)
        loss.backward(scale)

        for k in range(d):
            rl = Tensor(logits[k], requires_grad=True)
            ref = softmax_cross_entropy(rl, targets[k])
            ref.backward(np.asarray(scale[k]))
            _bitwise(ref.data, loss.data[k])
            _bitwise(rl.grad, lt.grad[k])


class TestDropoutFleetProperties:
    @given(
        data=st.data(),
        d=st.integers(min_value=1, max_value=4),
        n=st.integers(min_value=1, max_value=5),
        width=st.integers(min_value=1, max_value=6),
        p=st.floats(min_value=0.05, max_value=0.8),
        steps=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_per_replica_streams_bitwise(self, data, d, n, width, p, steps):
        """Each replica's dropout stream sees exactly the serial draw
        sequence: masks and post-burst RNG states match bitwise over
        multiple consecutive batched forwards."""
        seed = data.draw(st.integers(0, 2**31 - 1))
        serial = [Dropout(p, rng=np.random.default_rng(seed + k))
                  for k in range(d)]
        fleet = [Dropout(p, rng=np.random.default_rng(seed + k))
                 for k in range(d)]
        for m in serial + fleet:
            m.train()
        # Dropout has no parameters: drive the handler through a
        # single-layer Sequential fleet over an empty stack.
        seqs = [Sequential(fleet[k]) for k in range(d)]
        arenas = [ParamArena(s) for s in seqs]
        module = FleetModule(
            seqs, np.zeros((d, 0)), arenas[0].layout(), grad_stack=np.zeros((d, 0))
        )
        rng = np.random.default_rng(seed ^ 0xF1EE7)
        for _ in range(steps):
            x = rng.normal(size=(d, n, width))
            out = module.forward(Tensor(x), count=d, stacked=True)
            for k in range(d):
                ref = serial[k](Tensor(x[k]))
                _bitwise(ref.data, out.data[k])
        for k in range(d):
            assert (
                serial[k]._rng.bit_generator.state
                == fleet[k]._rng.bit_generator.state
            )


class TestMLPTrainingStepProperties:
    @given(
        data=st.data(),
        d=st.integers(min_value=2, max_value=4),
        n=st.integers(min_value=1, max_value=5),
        fin=st.integers(min_value=1, max_value=6),
        hidden=st.integers(min_value=1, max_value=8),
        classes=st.integers(min_value=2, max_value=5),
        momentum=st.sampled_from([0.0, 0.9]),
    )
    @settings(max_examples=25, deadline=None)
    def test_full_training_step_bitwise(
        self, data, d, n, fin, hidden, classes, momentum
    ):
        """A complete batched SGD step (forward, CE, backward, update)
        leaves parameters, gradients and optimizer state bitwise equal
        to D serial steps."""
        seed = data.draw(st.integers(0, 2**31 - 1))

        def build():
            return [
                MLP(fin, hidden=(hidden,), num_classes=classes,
                    rng=np.random.default_rng(seed + k))
                for k in range(d)
            ]

        serial, fleet = build(), build()
        serial_arenas = [ParamArena(m) for m in serial]
        fleet_arenas = [ParamArena(m) for m in fleet]
        serial_opts = [SGD(m.parameters(), lr=0.1, momentum=momentum)
                       for m in serial]
        fleet_opts = [SGD(m.parameters(), lr=0.1, momentum=momentum)
                      for m in fleet]
        rng = np.random.default_rng(seed ^ 0xABCD)
        x = rng.normal(size=(d, n, fin))
        y = rng.integers(0, classes, size=(d, n))

        ref_losses = []
        for k in range(d):
            serial_opts[k].zero_grad()
            loss = softmax_cross_entropy(serial[k](Tensor(x[k])), y[k])
            loss.backward()
            serial_opts[k].step()
            ref_losses.append(float(loss.data))

        stack_arena = FleetArena(fleet_arenas)
        try:
            module = FleetModule(fleet, stack_arena.stack,
                                 fleet_arenas[0].layout(),
                                 grad_stack=stack_arena.grad_stack)
            for opt in fleet_opts:
                opt.zero_grad()
            module.sync_grad_liveness(d)
            logits = module.forward(Tensor(x), count=d, stacked=True)
            loss_vec = fleet_softmax_cross_entropy(logits, y)
            loss_vec.backward(np.ones(d))
            module.adopt_member_grads(d)
            for opt in fleet_opts:
                opt.step()
        finally:
            stack_arena.release()

        assert ref_losses == [float(v) for v in loss_vec.data]
        for k in range(d):
            _bitwise(serial_arenas[k].read(), fleet_arenas[k].read())
            _bitwise(serial_arenas[k].grad_flat, fleet_arenas[k].grad_flat)
            for sv, fv in zip(serial_opts[k].flat_state(),
                              fleet_opts[k].flat_state()):
                _bitwise(sv, fv)
