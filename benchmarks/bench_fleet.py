"""Fleet benchmark: stacked replica evaluation + batched training bursts.

Two measurements per fleet size D ∈ {4, 8, 32}, on architecture-identical
MLP replicas:

* **Stacked evaluation** — score every live replica on a probe set
  (per-replica telemetry, the selection-policy regime) three ways: the
  pre-fleet per-device loop through the shared eval model
  (``evaluate_params(get_params())`` codec round-trips), the zero-copy
  per-device loop (``evaluate_device``), and one batched forward over a
  ``(D, n)`` parameter stack (``evaluate_devices``).  All three are
  bitwise identical; the batched path must be ≥ 2× the codec loop at
  D ≥ 8 (the acceptance floor, enforced in full mode only).
* **Training bursts** — one round of fixed-step local-training bursts
  through ``executor="serial"`` vs ``executor="fleet"`` (the replica-
  batched kernels), with the bitwise parity contract spot-checked on
  the final parameters.

Writes ``benchmarks/results/fleet.json`` and the repo-root trajectory
artefact ``BENCH_fleet.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

from repro.experiments import ExperimentConfig  # noqa: E402
from repro.parallel import LocalTrainTask  # noqa: E402

FLEET_SIZES = (4, 8, 32)
PROBE_SAMPLES = 16  # per-replica telemetry probes are small by design
EVAL_FLOOR = 2.0  # acceptance: batched >= 2x the codec loop at D >= 8


def _make_cluster(executor: str, fleet_size: int):
    config = ExperimentConfig(
        model="mlp",
        num_train=512,
        num_test=PROBE_SAMPLES,
        image_size=8,
        batch_size=32,
        power_ratio=tuple([1.0] * fleet_size),
        momentum=0.9,
        seed=1,
        executor=executor,
    )
    return config.make_cluster()


def _best_of(fn, repeats: int) -> float:
    """Best wall-seconds over ``repeats`` runs (noise only inflates)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# --------------------------------------------------------------------- #
# Stacked evaluation
# --------------------------------------------------------------------- #
def _bench_eval(fleet_size: int, repeats: int) -> dict:
    cluster = _make_cluster("serial", fleet_size)
    devices = list(cluster.devices)

    def codec_loop():
        return {
            d.device_id: cluster.evaluate_params(d.get_params())
            for d in devices
        }

    def arena_loop():
        return {
            d.device_id: cluster.evaluate_device(d.device_id)
            for d in devices
        }

    def batched():
        return cluster.evaluate_devices()

    # Parity first (also warms every path and the fleet caches).
    reference = codec_loop()
    assert arena_loop() == reference, "arena loop diverged from codec loop"
    assert batched() == reference, "batched eval diverged from codec loop"

    seconds = {
        "codec_loop": _best_of(codec_loop, repeats),
        "arena_loop": _best_of(arena_loop, repeats),
        "batched": _best_of(batched, repeats),
    }
    cluster.close()
    return {
        "fleet_size": fleet_size,
        "seconds": {k: round(v, 6) for k, v in seconds.items()},
        "speedup_vs_codec_loop": round(
            seconds["codec_loop"] / seconds["batched"], 4
        ),
        "speedup_vs_arena_loop": round(
            seconds["arena_loop"] / seconds["batched"], 4
        ),
        "parity": "bitwise",
    }


# --------------------------------------------------------------------- #
# Training bursts
# --------------------------------------------------------------------- #
def _round_tasks(cluster, steps: int, start_time: float):
    return [
        LocalTrainTask(
            device_id=device.device_id, num_steps=steps, start_time=start_time
        )
        for device in cluster.devices
    ]


def _bench_training(fleet_size: int, rounds: int, steps: int, repeats: int) -> dict:
    backends = ("serial", "fleet")
    clusters = {name: _make_cluster(name, fleet_size) for name in backends}
    for cluster in clusters.values():
        cluster.run_local_tasks(_round_tasks(cluster, 1, -1.0))  # warm-up
    timings = {name: float("inf") for name in backends}
    # Interleave backends inside each repeat so load drift cannot bias
    # one backend's block (the bench_parallel policy).
    for repeat in range(repeats):
        for name in backends:
            cluster = clusters[name]
            elapsed = _best_of(
                lambda c=cluster, r=repeat: [
                    c.run_local_tasks(
                        _round_tasks(c, steps, float(r * rounds + i))
                    )
                    for i in range(rounds)
                ],
                1,
            )
            timings[name] = min(timings[name], elapsed)
    # Parity: identical seeds and bursts leave identical replicas (the
    # full contract lives in tests/test_fleet.py).
    for serial_dev, fleet_dev in zip(
        clusters["serial"].devices, clusters["fleet"].devices
    ):
        np.testing.assert_array_equal(
            serial_dev.get_params(), fleet_dev.get_params()
        )
    for cluster in clusters.values():
        cluster.close()
    return {
        "fleet_size": fleet_size,
        "rounds": rounds,
        "steps_per_burst": steps,
        "seconds": {k: round(v, 6) for k, v in timings.items()},
        "speedup_vs_serial": round(timings["serial"] / timings["fleet"], 4),
        "parity": "bitwise",
    }


# --------------------------------------------------------------------- #
def run(
    rounds: int = 4,
    steps: int = 12,
    repeats: int = 5,
    enforce_floor: bool = True,
) -> dict:
    evaluation = [_bench_eval(d, repeats) for d in FLEET_SIZES]
    training = [
        _bench_training(d, rounds, steps, repeats) for d in FLEET_SIZES
    ]
    results = {
        "probe_samples": PROBE_SAMPLES,
        "cpu_count": os.cpu_count(),
        "eval_floor": EVAL_FLOOR,
        "stacked_eval": evaluation,
        "training_bursts": training,
    }
    if enforce_floor:
        for row in evaluation:
            if row["fleet_size"] >= 8:
                assert row["speedup_vs_codec_loop"] >= EVAL_FLOOR, (
                    f"stacked eval below the {EVAL_FLOOR}x floor at "
                    f"D={row['fleet_size']}: {row['speedup_vs_codec_loop']}x"
                )
    return results


def main(quick: bool = False) -> dict:
    if quick or os.environ.get("REPRO_BENCH_QUICK"):
        # Tiny sizes for CI smoke: numbers are noise, only the bitwise
        # parity assertions are meaningful — no floor.
        results = run(rounds=1, steps=4, repeats=1, enforce_floor=False)
    else:
        results = run()
    out_dir = REPO_ROOT / "benchmarks" / "results"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "fleet.json").write_text(json.dumps(results, indent=2))
    import platform

    payload = {
        "bench": "fleet",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": results,
    }
    artefact = REPO_ROOT / "BENCH_fleet.json"
    artefact.write_text(json.dumps(payload, indent=2))
    print(json.dumps(results, indent=2))
    print(f"wrote {artefact}")
    return results


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="tiny sizes for CI smoke runs"
    )
    main(quick=parser.parse_args().quick)
