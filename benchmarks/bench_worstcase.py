"""Upper bound of accuracy loss (paper Sec. IV-B, in-text experiment).

Forces the two weakest devices into every partial synchronisation on
[3,3,1,1] — "only the local data on GPU 2 and GPU 3 are available for
model update" — and measures the accuracy gap and fluctuation against
normal HADFL, plus the paper's vanishing-probability argument.

Expected shape (paper): worst case converges several points lower (86%
vs 90% on ResNet; 76% vs 86% on VGG) but does not collapse; the
probability of this happening under the real selection law decays to 0.
"""

from benchmarks.conftest import bench_config, write_artifact
from repro.experiments import HETEROGENEITY_3311, run_worstcase
from repro.experiments.worstcase import worst_case_probability


def _run():
    config = bench_config(model="resnet_mini", power_ratio=HETEROGENEITY_3311)
    return run_worstcase(config)


def test_worstcase_upper_bound(benchmark):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [report.summary()]
    for epochs in (4, 16, 64):
        p = worst_case_probability(4, total_epochs=epochs, tsync=1)
        lines.append(
            f"P(worst-only selection for {epochs:3d} epochs) = {p:.3e}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact("worstcase.txt", text + "\n")

    # Bounded loss: worse than normal HADFL, far better than chance.
    assert report.worst.best_accuracy() < report.normal.best_accuracy()
    assert report.worst.best_accuracy() > 0.3
    # The paper's probability argument: vanishes with training length.
    assert worst_case_probability(4, 64, 1) < 1e-50
