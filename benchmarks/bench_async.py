"""Async-federation benchmark: sim-time-to-accuracy under stragglers.

Runs the population trainer on a straggler-heavy power spread
(``8:4:1:1`` — half the population computes at 1/8th the speed of the
fastest cohort) in the three federation modes and records the virtual
time each needs to reach the target test accuracy:

* ``sync`` — the full-window barrier: every round costs the whole
  ``round_window`` regardless of who finished early;
* ``buffered_async`` — FedBuff-style first-K folding: the round cuts at
  the K-th completed arrival, so the fast cohort's uploads fold without
  waiting out the window, and stragglers fold late with a
  ``(1+τ)^(−a)`` staleness discount;
* ``semi_sync`` — deadline aggregation: with stragglers permanently
  window-clamped it degenerates to the sync barrier (recorded here as
  the control that it does).

Acceptance (asserted in full *and* quick mode — virtual time is
deterministic, not machine speed):

* every mode reaches the target accuracy;
* ``buffered_async`` reaches it in **strictly less** virtual time than
  ``sync`` — the point of arrival-ordered aggregation.

Writes ``benchmarks/results/async.json`` and the repo-root trajectory
artefact ``BENCH_async.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_async.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

from repro.experiments.population import PopulationConfig, run_population  # noqa: E402

TARGET_ACCURACY = 0.6
ROUNDS = 16
ROUNDS_QUICK = 8

#: Per-mode PopulationConfig overrides.  The async buffer folds after
#: two completed uploads (the fast cohort), with a 10-step dispatch
#: budget so fast devices turn around well inside the window.
MODES: Dict[str, Dict[str, Any]] = {
    "sync": {},
    "buffered_async": {"async_buffer": 2, "local_steps": 10},
    "semi_sync": {},
}


def _config(mode: str, quick: bool) -> PopulationConfig:
    return PopulationConfig(
        population=64,
        participants=8,
        rounds=ROUNDS_QUICK if quick else ROUNDS,
        round_window=1.0,
        num_train=256,
        num_test=128,
        eval_every=1,
        seed=5,
        power_levels=(8.0, 4.0, 1.0, 1.0),
        aggregation=mode,
        **MODES[mode],
    )


def _time_to_accuracy(result, target: float) -> Optional[float]:
    """First round-end virtual time at which the test accuracy reached
    ``target``; ``None`` if the run never got there."""
    for record in result.rounds:
        if record.test_accuracy is not None and record.test_accuracy >= target:
            return record.sim_time
    return None


def main(quick: bool = False) -> Dict[str, Any]:
    results: Dict[str, Any] = {}
    for mode in MODES:
        started = time.perf_counter()
        run = run_population(_config(mode, quick))
        wall = time.perf_counter() - started
        robustness = run.robustness_summary()
        results[mode] = {
            "time_to_target": _time_to_accuracy(run, TARGET_ACCURACY),
            "target_accuracy": TARGET_ACCURACY,
            "best_accuracy": run.best_accuracy(),
            "final_sim_time": run.total_time,
            "total_comm_bytes": run.total_comm_bytes,
            "rounds": len(run.rounds),
            "arrivals": robustness["arrivals"],
            "buffered_rounds": robustness["buffered_rounds"],
            "deadline_cut_rounds": robustness["deadline_cut_rounds"],
            "max_staleness": robustness["max_staleness"],
            "wall_seconds": wall,
        }
        print(
            f"{mode:>15}: t@{TARGET_ACCURACY} = "
            f"{results[mode]['time_to_target']} vs final "
            f"{run.total_time:.2f}s virtual, best {run.best_accuracy():.3f}"
        )

    for mode, row in results.items():
        assert row["time_to_target"] is not None, (
            f"{mode} never reached {TARGET_ACCURACY} accuracy"
        )
    speedup = results["sync"]["time_to_target"] / results["buffered_async"][
        "time_to_target"
    ]
    results["async_speedup_over_sync"] = speedup
    assert (
        results["buffered_async"]["time_to_target"]
        < results["sync"]["time_to_target"]
    ), (
        "buffered_async must beat sync to the target accuracy: "
        f"{results['buffered_async']['time_to_target']} vs "
        f"{results['sync']['time_to_target']}"
    )
    print(f"buffered_async speedup over sync: {speedup:.2f}x")

    payload = {
        "bench": "async",
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": results,
    }
    results_dir = REPO_ROOT / "benchmarks" / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "async.json").write_text(json.dumps(payload, indent=2))
    out = REPO_ROOT / "BENCH_async.json"
    out.write_text(json.dumps(payload, indent=2))
    print(f"wrote {out}")
    return payload


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="fewer rounds for CI smoke runs"
    )
    main(quick=parser.parse_args().quick)
