"""Substrate micro-benchmarks: the building blocks under the experiments.

Classic pytest-benchmark timing of the hot paths — ring all-reduce,
conv2d forward/backward, the event engine, parameter codec — so substrate
regressions are visible independently of the end-to-end runs.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, conv2d, softmax_cross_entropy
from repro.comm import FlatParamCodec, ring_allreduce
from repro.nn import models
from repro.sim import Simulator

RNG = np.random.default_rng(0)


def test_ring_allreduce_4x100k(benchmark):
    vectors = [RNG.normal(size=100_000) for _ in range(4)]
    result = benchmark(ring_allreduce, vectors)
    np.testing.assert_allclose(result, np.mean(vectors, axis=0), atol=1e-9)


def test_ring_allreduce_16x10k(benchmark):
    vectors = [RNG.normal(size=10_000) for _ in range(16)]
    benchmark(ring_allreduce, vectors)


def test_conv2d_forward_backward(benchmark):
    x = Tensor(RNG.normal(size=(16, 8, 8, 8)), requires_grad=True)
    w = Tensor(RNG.normal(size=(16, 8, 3, 3)), requires_grad=True)

    def run():
        out = conv2d(x, w, padding=1)
        out.backward(np.ones(out.shape))
        x.zero_grad()
        w.zero_grad()

    benchmark(run)


def test_resnet_mini_training_step(benchmark):
    model = models.resnet_mini(rng=np.random.default_rng(0))
    from repro.optim import SGD

    opt = SGD(model.parameters(), lr=0.01)
    images = RNG.normal(size=(16, 3, 8, 8))
    labels = RNG.integers(0, 10, size=16)

    def step():
        opt.zero_grad()
        loss = softmax_cross_entropy(model(Tensor(images)), labels)
        loss.backward()
        opt.step()

    benchmark(step)


def test_event_engine_throughput(benchmark):
    def run():
        sim = Simulator()
        counter = [0]

        def tick():
            counter[0] += 1
            if counter[0] < 5000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return counter[0]

    assert benchmark(run) == 5000


def test_param_codec_roundtrip(benchmark):
    model = models.resnet_mini(base_channels=16, rng=np.random.default_rng(0))
    codec = FlatParamCodec(model)

    def roundtrip():
        codec.unflatten(model, codec.flatten(model))

    benchmark(roundtrip)


def test_gossip_ring_sync_protocol(benchmark):
    from repro.comm import FaultTolerantRingSync
    from repro.sim import NetworkModel

    sync = FaultTolerantRingSync(NetworkModel())
    vectors = {i: RNG.normal(size=50_000) for i in range(4)}

    def run():
        return sync.run(
            Simulator(), [0, 1, 2, 3], vectors, lambda d, t: True, 200_000
        )

    result = benchmark(run)
    assert result.survivors == [0, 1, 2, 3]
