"""Perf-trajectory entry point: run the perf benches, record JSON.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_bench.py [--quick]

Runs :mod:`bench_hotpath`, :mod:`bench_parallel`, :mod:`bench_wire`,
:mod:`bench_fleet`, :mod:`bench_population` and :mod:`bench_async` and
writes the artefacts:

* ``benchmarks/results/hotpath.json`` / ``results/parallel.json`` /
  ``results/wire.json`` / ``results/fleet.json`` /
  ``results/population.json`` / ``results/async.json`` — raw
  measurements;
* ``BENCH_hotpath.json`` / ``BENCH_parallel.json`` /
  ``BENCH_wire.json`` / ``BENCH_fleet.json`` /
  ``BENCH_population.json`` / ``BENCH_async.json`` at the repo root —
  the same numbers plus run metadata, the files future PRs diff to
  track the perf trajectory.

``--quick`` shrinks repeat counts for CI smoke runs (numbers are then
noisy; only the bitwise-equality checks are meaningful).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
for path in (str(SRC), str(REPO_ROOT / "benchmarks")):
    if path not in sys.path:
        sys.path.insert(0, path)

import numpy as np  # noqa: E402

import bench_async  # noqa: E402
import bench_fleet  # noqa: E402
import bench_hotpath  # noqa: E402
import bench_parallel  # noqa: E402
import bench_population  # noqa: E402
import bench_wire  # noqa: E402


def main(quick: bool = False) -> dict:
    if quick:
        os.environ.setdefault("REPRO_BENCH_HOTPATH_REPEATS", "2")
    results = bench_hotpath.main()
    payload = {
        "bench": "hotpath",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": results,
    }
    out = REPO_ROOT / "BENCH_hotpath.json"
    out.write_text(json.dumps(payload, indent=2))
    print(f"wrote {out}")
    parallel = bench_parallel.main(quick=quick)
    wire = bench_wire.main(quick=quick)
    fleet = bench_fleet.main(quick=quick)
    population = bench_population.main(quick=quick)
    async_modes = bench_async.main(quick=quick)
    # Each bench persists its own artefact; the merged dict is only the
    # in-process return value.
    return {
        "hotpath": payload,
        "parallel": parallel,
        "wire": wire,
        "fleet": fleet,
        "population": population,
        "async": async_modes,
    }


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="tiny sizes for CI smoke runs"
    )
    main(quick=parser.parse_args().quick)
