"""Perf-trajectory entry point: run the hot-path microbench, record JSON.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_bench.py

Runs :mod:`bench_hotpath` and writes two artefacts:

* ``benchmarks/results/hotpath.json`` — the raw measurements;
* ``BENCH_hotpath.json`` at the repo root — the same numbers plus run
  metadata, the file future PRs diff to track the perf trajectory.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
for path in (str(SRC), str(REPO_ROOT / "benchmarks")):
    if path not in sys.path:
        sys.path.insert(0, path)

import numpy as np  # noqa: E402

import bench_hotpath  # noqa: E402


def main() -> dict:
    results = bench_hotpath.main()
    payload = {
        "bench": "hotpath",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": results,
    }
    out = REPO_ROOT / "BENCH_hotpath.json"
    out.write_text(json.dumps(payload, indent=2))
    print(f"wrote {out}")
    return payload


if __name__ == "__main__":
    main()
