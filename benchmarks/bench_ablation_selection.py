"""Ablation — selection policy (paper Sec. III-C design argument).

Compares Eq. 8's Gaussian-at-Q3 law against uniform, latest-only and
forced-worst selection under [4,2,2,1].

Expected shape: gaussian/uniform/latest are close; forced-worst converges
clearly lower (it is the paper's upper-bound case) — demonstrating that
the probabilistic law keeps straggler noise without paying its price.
"""

from benchmarks.conftest import bench_config, write_artifact
from repro.experiments import HETEROGENEITY_4221, ablate_selection_policy
from repro.metrics.convergence import time_to_max_accuracy
from repro.metrics.report import render_table


def _run():
    config = bench_config(model="resnet_mini", power_ratio=HETEROGENEITY_4221)
    return ablate_selection_policy(config)


def test_ablation_selection_policy(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for policy, result in results.items():
        best, t_best = time_to_max_accuracy(result)
        rows.append([policy, f"{best * 100:.1f}%", f"{t_best:.1f} s"])
    table = render_table(["selection policy", "max accuracy", "time to max"], rows)
    print("\n" + table)
    write_artifact("ablation_selection.txt", table + "\n")

    assert (
        results["worst"].best_accuracy()
        < results["gaussian_quartile"].best_accuracy()
    )
    # The paper's law is competitive with blind uniform selection.
    assert (
        results["gaussian_quartile"].best_accuracy()
        >= results["uniform"].best_accuracy() - 0.05
    )
