"""Fig. 3 (a)–(c) — ResNet: loss vs epoch, accuracy vs epoch, accuracy vs time.

Regenerates the ResNet row of the paper's Fig. 3 for both heterogeneity
distributions, including the worst-case-selection overlay.

Expected shape (paper): (a) HADFL's per-epoch loss sits slightly above
the synchronous schemes, the worst-case series fluctuates; (b) all
schemes reach within a few accuracy points at matched epochs; (c) HADFL's
accuracy-vs-time curve climbs first.
"""

from benchmarks.conftest import bench_config, write_artifact
from repro.experiments import (
    HETEROGENEITY_3311,
    HETEROGENEITY_4221,
    run_fig3,
)
from repro.experiments.fig3 import format_fig3
from repro.metrics.convergence import time_to_max_accuracy
from repro.metrics.report import results_to_csv


def _run(ratio):
    config = bench_config(model="resnet_mini", power_ratio=ratio)
    return run_fig3(config, include_worst_case=True)


def test_fig3_resnet_3311(benchmark):
    results = benchmark.pedantic(_run, args=(HETEROGENEITY_3311,), rounds=1, iterations=1)
    panels = format_fig3(results, "resnet_mini [3,3,1,1]")
    print("\n" + panels)
    write_artifact("fig3_resnet_3311.txt", panels + "\n")
    for name, result in results.items():
        write_artifact(f"fig3_resnet_3311_{name}.csv", results_to_csv(result))
    # Panel (c): HADFL peaks earliest in wall time.
    _, t_hadfl = time_to_max_accuracy(results["hadfl"])
    _, t_dist = time_to_max_accuracy(results["distributed"])
    assert t_hadfl < t_dist
    # Worst-case overlay converges strictly lower (paper: 86% vs 90%).
    assert results["hadfl_worst"].best_accuracy() < results["hadfl"].best_accuracy()


def test_fig3_resnet_4221(benchmark):
    results = benchmark.pedantic(_run, args=(HETEROGENEITY_4221,), rounds=1, iterations=1)
    panels = format_fig3(results, "resnet_mini [4,2,2,1]")
    print("\n" + panels)
    write_artifact("fig3_resnet_4221.txt", panels + "\n")
    _, t_hadfl = time_to_max_accuracy(results["hadfl"])
    _, t_fedavg = time_to_max_accuracy(results["decentralized_fedavg"])
    assert t_hadfl < t_fedavg
