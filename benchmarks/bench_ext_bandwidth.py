"""Extension — heterogeneous network bandwidth (paper's future work).

The paper's conclusion: "we will ... optimize it by taking into account
heterogeneous network bandwidth".  One device gets a 20× slower uplink;
a gossip ring that includes it advances at its pace.  We compare the
stock version-law selection with :class:`BandwidthAwareSelection`.

Expected shape: bandwidth-aware selection picks the throttled device less
often and spends no more total time, at a small accuracy cost — the same
exclusion trade-off the paper's Sec. III-C warns about, now along the
bandwidth axis.  (An earlier aggressive tilt, gamma=2 on a *fast-compute*
device, cost 7 accuracy points for 0.6 s — the moderate default below
keeps the device in rotation.)
"""

from benchmarks.conftest import bench_config, write_artifact
from repro.core import BandwidthAwareSelection, HADFLTrainer
from repro.experiments import HETEROGENEITY_3311
from repro.metrics.convergence import time_to_max_accuracy
from repro.metrics.report import render_table

THROTTLED_DEVICE = 3  # the weak edge device also has the slowest link


def _run():
    config = bench_config(
        model="resnet_mini",
        power_ratio=HETEROGENEITY_3311,
        device_bandwidth={THROTTLED_DEVICE: 1e5},  # vs 4e6 default
        target_epochs=min(10.0, bench_config().target_epochs),
    )
    stock_cluster = config.make_cluster()
    stock = HADFLTrainer(
        stock_cluster, params=config.hadfl_params(), seed=1
    ).run(target_epochs=config.target_epochs)

    aware_cluster = config.make_cluster()
    policy = BandwidthAwareSelection(aware_cluster.network, gamma=1.5)
    aware = HADFLTrainer(
        aware_cluster, params=config.hadfl_params(), selection=policy, seed=1
    ).run(target_epochs=config.target_epochs)
    return stock, aware


def test_bandwidth_aware_selection(benchmark):
    stock, aware = benchmark.pedantic(_run, rounds=1, iterations=1)

    def picks_per_round(result):
        return sum(r.selected.count(THROTTLED_DEVICE) for r in result.rounds) / len(
            result.rounds
        )

    rows = []
    for name, result in (("version-law", stock), ("bandwidth-aware", aware)):
        best, t_best = time_to_max_accuracy(result)
        rows.append(
            [
                name,
                f"{best * 100:.1f}%",
                f"{t_best:.1f} s",
                f"{picks_per_round(result):.2f}",
                f"{result.total_time:.1f} s",
            ]
        )
    table = render_table(
        ["policy", "max acc", "time to max", "slow-link picks/round", "total time"],
        rows,
    )
    print("\n" + table)
    write_artifact("ext_bandwidth.txt", table + "\n")

    assert picks_per_round(aware) <= picks_per_round(stock)
    assert aware.total_time <= stock.total_time * 1.05
    assert aware.best_accuracy() >= stock.best_accuracy() - 0.08
