"""Wire-format benchmark: accuracy vs communication volume per wire format.

Runs the canonical HADFL configuration once per wire format — the float
casts (fp64, fp32, fp16) plus the quantised codecs (`int8_sr`, QSGD
buckets, DGC-style top-k) — on identically-seeded clusters and records
the bytes-vs-final-accuracy frontier every compressed collective trades
along.  Verifies the pricing and accuracy contracts on the side:

* fp64 (default) is lossless — zero cast error in every round — and
  prices 8 B/scalar;
* fp32/fp16 totals are exactly 1/2 and 1/4 of the fp64 bytes;
* the quantised headline formats (`int8_sr`, `topk0.2`) cut per-round
  collective bytes >= 4x vs fp64 while landing final accuracy within
  the fp16 envelope on the same seeds;
* the PR-2 accounting invariant (``sum(comm_bytes) + initial_dispatch ==
  accountant.total_bytes``) holds for every format — including the
  variable-size top-k payloads.

Writes ``benchmarks/results/wire.json`` and the repo-root trajectory
artefact ``BENCH_wire.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_wire.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from dataclasses import asdict
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

from repro.core import HADFLTrainer  # noqa: E402
from repro.experiments import (  # noqa: E402
    ExperimentConfig,
    format_wire_sweep,
    run_wire_sweep,
)

WIRE_DTYPES = (
    "fp64", "fp32", "fp16", "int8_sr", "qsgd8", "qsgd4", "topk0.2", "topk0.05",
)
QUICK_WIRE_DTYPES = ("fp64", "fp32", "int8_sr", "topk0.2")

#: The quantised headline formats of the acceptance criteria: each must
#: cut per-round collective bytes by at least this factor vs fp64 …
QUANTISED_HEADLINERS = ("int8_sr", "topk0.2")
MIN_BYTE_CUT = 4.0
#: … while keeping final accuracy within the fp16 envelope: the fp16
#: run's own deviation from fp64 plus a few evaluation-grid steps
#: (1/256 test samples ≈ 0.004 accuracy per step at the bench scale).
ENVELOPE_SLACK = 0.025


def _config(quick: bool) -> ExperimentConfig:
    return ExperimentConfig(
        model="mlp",
        num_train=256 if quick else 512,
        num_test=128 if quick else 256,
        image_size=8,
        target_epochs=3.0 if quick else 16.0,
        seed=3,
    )


def _check_invariant(config: ExperimentConfig, wire_dtype: str) -> None:
    """The accounting invariant must hold under every wire format."""
    # A shorter horizon than the sweep: the invariant is structural per
    # round, so a few rounds exercise it as well as the full frontier.
    config = config.with_overrides(target_epochs=min(config.target_epochs, 4.0))
    cluster = config.with_overrides(wire_dtype=wire_dtype).make_cluster()
    trainer = HADFLTrainer(cluster, params=config.hadfl_params(), seed=config.seed)
    result = trainer.run(target_epochs=config.target_epochs)
    dispatch = trainer.volume.bytes_by_kind()["initial_dispatch"]
    total = sum(r.comm_bytes for r in result.rounds) + dispatch
    assert total == trainer.volume.total_bytes, (
        f"accounting invariant broken on {wire_dtype}: "
        f"{total} != {trainer.volume.total_bytes}"
    )


def main(quick: bool = False) -> dict:
    config = _config(quick)
    wire_dtypes = QUICK_WIRE_DTYPES if quick else WIRE_DTYPES
    cells = run_wire_sweep(config, wire_dtypes=wire_dtypes)
    by_dtype = {cell.wire_dtype: cell for cell in cells}

    fp64 = by_dtype["fp64"]
    if not quick:
        # Identical seeds run identical round counts at the full bench
        # scale, which makes the totals directly comparable too.  (At
        # quick scale a cheaper wire's shorter dispatch can shift a
        # window boundary across a step; the per-round figures below
        # stay comparable regardless.)
        rounds = {cell.rounds for cell in cells}
        assert len(rounds) == 1, f"round counts diverged across wires: {rounds}"
        assert by_dtype["fp32"].total_comm_bytes * 2 == fp64.total_comm_bytes, (
            "fp32 wire must halve the fp64 byte total"
        )
        assert by_dtype["fp16"].total_comm_bytes * 4 == fp64.total_comm_bytes, (
            "fp16 wire must quarter the fp64 byte total"
        )
        assert by_dtype["fp16"].max_cast_error > by_dtype["fp32"].max_cast_error

    # Contract checks (cheap relative to the sweep itself).
    assert fp64.max_cast_error == 0.0, "fp64 wire must be lossless"
    assert by_dtype["fp32"].max_cast_error > 0.0

    # Quantised headliners: >= 4x fewer collective bytes per round …
    for name in QUANTISED_HEADLINERS:
        cell = by_dtype[name]
        cut = fp64.comm_bytes_per_round / cell.comm_bytes_per_round
        assert cut >= MIN_BYTE_CUT, (
            f"{name} cut per-round bytes only {cut:.2f}x (< {MIN_BYTE_CUT}x)"
        )
        assert cell.max_cast_error > 0.0, f"{name} must report quantisation error"
    # … at final accuracy within the fp16 envelope.  Quick runs are too
    # short/noisy to pin accuracy; the full bench asserts it.
    if not quick:
        envelope = (
            abs(by_dtype["fp16"].final_accuracy - fp64.final_accuracy)
            + ENVELOPE_SLACK
        )
        for name in QUANTISED_HEADLINERS:
            drop = abs(by_dtype[name].final_accuracy - fp64.final_accuracy)
            assert drop <= envelope, (
                f"{name} final accuracy deviates {drop:.4f} from fp64 "
                f"(> fp16 envelope {envelope:.4f})"
            )

    # Accounting invariant for every swept format, incl. variable-size
    # top-k payloads (quick keeps one cast + one quantised format).
    invariant_dtypes = ("fp64", "int8_sr") if quick else wire_dtypes
    for wire_dtype in invariant_dtypes:
        _check_invariant(config, wire_dtype)

    table = format_wire_sweep(cells)
    print(table)
    payload = {
        "bench": "wire",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "quick": quick,
        "config": {
            "model": config.model,
            "num_train": config.num_train,
            "target_epochs": config.target_epochs,
            "seed": config.seed,
        },
        "cells": [asdict(cell) for cell in cells],
        "table": table,
    }
    results_dir = REPO_ROOT / "benchmarks" / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "wire.json").write_text(json.dumps(payload, indent=2))
    out = REPO_ROOT / "BENCH_wire.json"
    out.write_text(json.dumps(payload, indent=2))
    print(f"wrote {out}")
    return payload


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true")
    main(quick=parser.parse_args().quick)
