"""Wire-format benchmark: accuracy vs communication volume per wire dtype.

Runs the canonical HADFL configuration once per wire format (fp64, fp32,
fp16) on identically-seeded clusters and records the trade every
compressed collective makes: total simulated bytes and virtual time
shrink with the wire width while cast error enters every sync.  Verifies
the pricing contract on the side:

* fp64 (default) is lossless — zero cast error in every round — and
  prices 8 B/scalar;
* fp32/fp16 totals are exactly 1/2 and 1/4 of the fp64 bytes;
* the PR-2 accounting invariant (``sum(comm_bytes) + initial_dispatch ==
  accountant.total_bytes``) holds for every dtype.

Writes ``benchmarks/results/wire.json`` and the repo-root trajectory
artefact ``BENCH_wire.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_wire.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from dataclasses import asdict
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

from repro.core import HADFLTrainer  # noqa: E402
from repro.experiments import (  # noqa: E402
    ExperimentConfig,
    format_wire_sweep,
    run_wire_sweep,
)

WIRE_DTYPES = ("fp64", "fp32", "fp16")


def _config(quick: bool) -> ExperimentConfig:
    return ExperimentConfig(
        model="mlp",
        num_train=256 if quick else 512,
        num_test=128 if quick else 256,
        image_size=8,
        target_epochs=3.0 if quick else 8.0,
        seed=3,
    )


def _check_invariant(config: ExperimentConfig, wire_dtype: str) -> None:
    """The accounting invariant must hold under every wire dtype."""
    cluster = config.with_overrides(wire_dtype=wire_dtype).make_cluster()
    trainer = HADFLTrainer(cluster, params=config.hadfl_params(), seed=config.seed)
    result = trainer.run(target_epochs=config.target_epochs)
    dispatch = trainer.volume.bytes_by_kind()["initial_dispatch"]
    total = sum(r.comm_bytes for r in result.rounds) + dispatch
    assert total == trainer.volume.total_bytes, (
        f"accounting invariant broken on {wire_dtype}: "
        f"{total} != {trainer.volume.total_bytes}"
    )


def main(quick: bool = False) -> dict:
    config = _config(quick)
    cells = run_wire_sweep(config, wire_dtypes=WIRE_DTYPES)
    by_dtype = {cell.wire_dtype: cell for cell in cells}

    # Contract checks (cheap relative to the sweep itself).
    assert by_dtype["fp64"].max_cast_error == 0.0, "fp64 wire must be lossless"
    fp64_bytes = by_dtype["fp64"].total_comm_bytes
    assert by_dtype["fp32"].total_comm_bytes * 2 == fp64_bytes, (
        "fp32 wire must halve the fp64 byte total"
    )
    assert by_dtype["fp16"].total_comm_bytes * 4 == fp64_bytes, (
        "fp16 wire must quarter the fp64 byte total"
    )
    assert by_dtype["fp32"].max_cast_error > 0.0
    assert by_dtype["fp16"].max_cast_error > by_dtype["fp32"].max_cast_error
    for wire_dtype in ("fp64", "fp32"):
        _check_invariant(config, wire_dtype)

    table = format_wire_sweep(cells)
    print(table)
    payload = {
        "bench": "wire",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "quick": quick,
        "config": {
            "model": config.model,
            "num_train": config.num_train,
            "target_epochs": config.target_epochs,
            "seed": config.seed,
        },
        "cells": [asdict(cell) for cell in cells],
        "table": table,
    }
    results_dir = REPO_ROOT / "benchmarks" / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "wire.json").write_text(json.dumps(payload, indent=2))
    out = REPO_ROOT / "BENCH_wire.json"
    out.write_text(json.dumps(payload, indent=2))
    print(f"wrote {out}")
    return payload


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true")
    main(quick=parser.parse_args().quick)
