"""Extension — hierarchical grouping at larger device counts (Fig. 2a).

The paper sketches multi-group HADFL for "too many devices"; this bench
runs 8 devices flat vs grouped (2 groups of 4) and sweeps the
inter-group period.

Expected shape: grouping trades a little accuracy-per-epoch (group models
drift between merges) for smaller rings; longer inter-group periods move
fewer bytes.
"""

from benchmarks.conftest import bench_config, write_artifact
from repro.core import GroupedHADFLTrainer, HADFLTrainer
from repro.metrics.report import render_table

RATIO_8 = (3, 3, 1, 1, 4, 2, 2, 1)


def _run():
    config = bench_config(
        model="mlp",
        power_ratio=RATIO_8,
        num_selected=2,
        target_epochs=min(10.0, bench_config().target_epochs),
    )
    flat = HADFLTrainer(
        config.make_cluster(), params=config.hadfl_params(), seed=1
    ).run(target_epochs=config.target_epochs)
    grouped = {}
    for period in (1, 2, 4):
        trainer = GroupedHADFLTrainer(
            config.make_cluster(),
            params=config.hadfl_params(),
            groups=2,
            inter_group_period=period,
            seed=1,
        )
        grouped[period] = trainer.run(target_epochs=config.target_epochs)
    return flat, grouped


def test_hierarchical_groups(benchmark):
    flat, grouped = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [
            "flat (8 devices)",
            f"{flat.best_accuracy() * 100:.1f}%",
            f"{flat.total_time:.1f} s",
            f"{flat.total_comm_bytes:,}",
        ]
    ]
    for period, result in sorted(grouped.items()):
        rows.append(
            [
                f"2 groups, merge every {period}",
                f"{result.best_accuracy() * 100:.1f}%",
                f"{result.total_time:.1f} s",
                f"{result.total_comm_bytes:,}",
            ]
        )
    table = render_table(["configuration", "max acc", "total time", "comm bytes"], rows)
    print("\n" + table)
    write_artifact("groups.txt", table + "\n")

    for result in grouped.values():
        assert result.best_accuracy() > 0.5
    # Rarer merges move fewer inter-group bytes.
    assert grouped[4].total_comm_bytes <= grouped[1].total_comm_bytes