"""Extension — non-IID data distribution (paper's future work).

Runs all three schemes on Dirichlet label-skewed shards (alpha = 0.3)
and HADFL across a skew sweep.

Expected shape: HADFL keeps its wall-time lead under skew; accuracy
degrades gracefully as alpha shrinks (each device sees fewer classes);
the never-exclude-stragglers selection matters more here because a
straggler's shard may hold classes nobody else has.
"""

from benchmarks.conftest import bench_config, write_artifact
from repro.experiments import HETEROGENEITY_4221, run_all_schemes, run_scheme
from repro.metrics.convergence import time_to_max_accuracy
from repro.metrics.report import render_table


def _run():
    config = bench_config(
        model="resnet_mini",
        power_ratio=HETEROGENEITY_4221,
        partition="dirichlet",
        dirichlet_alpha=0.3,
    )
    schemes = run_all_schemes(config)
    sweep = {
        alpha: run_scheme(
            "hadfl", config.with_overrides(dirichlet_alpha=alpha)
        )
        for alpha in (10.0, 0.5, 0.1)
    }
    return schemes, sweep


def test_noniid_data(benchmark):
    schemes, sweep = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for name, result in schemes.items():
        best, t_best = time_to_max_accuracy(result)
        rows.append([f"{name} (alpha=0.3)", f"{best * 100:.1f}%", f"{t_best:.1f} s"])
    for alpha, result in sweep.items():
        rows.append(
            [f"hadfl alpha={alpha}", f"{result.best_accuracy() * 100:.1f}%", "-"]
        )
    table = render_table(["run", "max accuracy", "time to max"], rows)
    print("\n" + table)
    write_artifact("ext_noniid.txt", table + "\n")

    # HADFL keeps its wall-time advantage under label skew.
    _, t_hadfl = time_to_max_accuracy(schemes["hadfl"])
    _, t_dist = time_to_max_accuracy(schemes["distributed"])
    assert t_hadfl < t_dist
    # Graceful degradation with skew (mild tolerance for noise).
    assert sweep[0.1].best_accuracy() <= sweep[10.0].best_accuracy() + 0.05
    for result in sweep.values():
        assert result.best_accuracy() > 0.4
