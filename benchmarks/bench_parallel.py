"""Parallel-executor benchmark: serial vs thread vs forked-pool rounds.

Measures the wall-clock throughput of one "round" of local training — a
batch of per-device bursts, the embarrassingly parallel phase of every
scheme — on a >= 8-device heterogeneous cluster, through each execution
backend, and verifies the bitwise-parity contract on the side.

Writes ``benchmarks/results/parallel.json`` and the repo-root trajectory
artefact ``BENCH_parallel.json``.

The process pool's speedup is bounded by the machine: on an N-core box
the expected gain approaches ``min(N, devices)`` for compute-dominated
bursts; on a single-core container it records ~1x (the state-shipping
overhead is the measured quantity then).  The artefact stores
``cpu_count`` so trajectory diffs across machines stay interpretable.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

from repro.experiments import ExperimentConfig  # noqa: E402
from repro.parallel import LocalTrainTask  # noqa: E402

POWER_RATIO = (4, 3, 3, 2, 2, 1, 1, 1)  # 8 devices, heterogeneous


def _make_cluster(executor: str):
    config = ExperimentConfig(
        model="mlp",
        num_train=4096,
        num_test=256,
        image_size=16,
        batch_size=64,
        power_ratio=POWER_RATIO,
        momentum=0.9,
        seed=1,
        executor=executor,
    )
    return config.make_cluster()


def _round_tasks(cluster, steps: int, start_time: float):
    return [
        LocalTrainTask(
            device_id=device.device_id, num_steps=steps, start_time=start_time
        )
        for device in cluster.devices
    ]


def _time_pass(cluster, rounds: int, steps: int, offset: int) -> float:
    """Wall seconds for one pass of ``rounds`` burst batches."""
    start = time.perf_counter()
    for index in range(rounds):
        cluster.run_local_tasks(
            _round_tasks(cluster, steps, float(offset * rounds + index))
        )
    return time.perf_counter() - start


def run(
    rounds: int = 5, steps: int = 30, repeats: int = 3, enforce_floor: bool = True
) -> dict:
    backends = ("serial", "thread", "process")
    clusters = {}
    timings = {backend: float("inf") for backend in backends}
    for backend in backends:
        cluster = _make_cluster(backend)
        clusters[backend] = cluster
        # One untimed warm-up batch: first-touch costs (thread pool
        # spin-up, worker fork, scratch allocation) are not throughput.
        cluster.run_local_tasks(_round_tasks(cluster, 1, -1.0))
    # Best-of-``repeats`` (the bench_hotpath policy: noise only inflates
    # a timing), with backends interleaved inside each repeat so slow
    # drift in background load cannot bias one backend's block.
    for repeat in range(repeats):
        for backend in backends:
            elapsed = _time_pass(clusters[backend], rounds, steps, repeat)
            timings[backend] = min(timings[backend], elapsed)

    # Parity spot-check: identical seeds and bursts must leave identical
    # replicas regardless of backend (the full contract lives in
    # tests/test_executor.py).
    reference = clusters["serial"]
    for backend in ("thread", "process"):
        for ref_device, device in zip(
            reference.devices, clusters[backend].devices
        ):
            np.testing.assert_array_equal(
                ref_device.get_params(), device.get_params(), err_msg=backend
            )
    for cluster in clusters.values():
        cluster.close()

    serial = timings["serial"]
    results = {
        "devices": len(POWER_RATIO),
        "rounds": rounds,
        "steps_per_burst": steps,
        "best_of": repeats,
        "cpu_count": os.cpu_count(),
        "seconds": {k: round(v, 6) for k, v in timings.items()},
        "rounds_per_second": {
            k: round(rounds / v, 4) for k, v in timings.items()
        },
        "speedup_vs_serial": {
            k: round(serial / v, 4) for k, v in timings.items()
        },
        "parity": "bitwise",
    }

    # The >= 1.5x pool-throughput floor is a property of the backend on
    # parallel hardware; a single-core machine cannot express it, and
    # quick-mode bursts are too small to be compute-dominated (the floor
    # would become a machine-speed gate, which CI must not have).  Only
    # the full bench on a multicore box enforces it.
    available = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    results["cores_available"] = available
    if available < 2:
        results["note"] = (
            "single core available: process-pool speedup is bounded at "
            "~1x here; the recorded figure measures state-shipping "
            "overhead, not parallel capacity"
        )
    elif enforce_floor:
        assert results["speedup_vs_serial"]["process"] >= 1.5, (
            "process pool below the 1.5x floor on multicore hardware: "
            f"{results['speedup_vs_serial']}"
        )
    return results


def main(quick: bool = False) -> dict:
    if quick or os.environ.get("REPRO_BENCH_QUICK"):
        results = run(rounds=2, steps=8, repeats=1, enforce_floor=False)
    else:
        results = run()
    out_dir = REPO_ROOT / "benchmarks" / "results"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "parallel.json").write_text(json.dumps(results, indent=2))
    import platform

    payload = {
        "bench": "parallel",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": results,
    }
    artefact = REPO_ROOT / "BENCH_parallel.json"
    artefact.write_text(json.dumps(payload, indent=2))
    print(json.dumps(results, indent=2))
    print(f"wrote {artefact}")
    return results


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="tiny sizes for CI smoke runs"
    )
    main(quick=parser.parse_args().quick)
