"""Hot-path microbenchmark: flat arena + fused optimizers vs seed paths.

Times the three bookkeeping hot spots the flat parameter arena removes,
each against a faithful re-implementation of the seed (pre-arena) code:

* **codec round-trip** — full model state out and back in.  Seed: per-
  parameter ``np.concatenate`` + ``.copy()`` + ``dict(named_parameters)``
  and ``_buffer_owners()`` rebuilt on every call.  Arena: one vectorized
  copy out, one vectorized write back.
* **optimizer step** — SGD (momentum + weight decay) and Adam.  Seed:
  per-parameter Python loop allocating fresh temporaries.  Fused: flat
  gather + a fixed number of in-place full-vector ops.
* **grad path** — one full local training step (``zero_grad`` +
  forward + backward + ``step``).  Seed: per-parameter ``grad = None``
  reset, per-tensor gradient allocation in backward, and a per-parameter
  gather into a scratch flat buffer before the fused kernel
  (``ParamArena(bind_grads=False)`` reproduces exactly this, the
  pre-grad-arena behaviour).  Grad arena: one ``grad_flat.fill(0.0)``,
  backward accumulates straight into the flat vector, and the fused step
  adopts it zero-copy — no gather, no per-step allocation.
* **one full HADFL round** — ``HADFLTrainer`` on a tiny cluster, stock
  vs devices patched back onto the seed codec path with fused kernels
  disabled.  Also checks the fixed-seed loss trajectories are identical,
  the bit-for-bit guarantee the refactor makes.

Writes machine-readable results to ``benchmarks/results/hotpath.json``
(see ``benchmarks/run_bench.py`` for the repo-root ``BENCH_hotpath.json``
trajectory artefact).  Scale via ``REPRO_BENCH_HOTPATH_REPEATS``.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.comm.params import ParamArena
from repro.core.config import HADFLParams
from repro.core.trainer import HADFLTrainer
from repro.data import synthetic_cifar10
from repro.nn import models
from repro.optim import SGD, Adam
from repro.sim import Device, DeviceSpec, SimulatedCluster

RESULTS_DIR = Path(__file__).parent / "results"


# --------------------------------------------------------------------- #
# Seed (pre-arena) reference implementations, replicated verbatim from
# the original ``FlatParamCodec``/optimizer code paths.
# --------------------------------------------------------------------- #


def seed_flatten(module) -> np.ndarray:
    chunks = [param.data.reshape(-1) for _, param in module.named_parameters()]
    chunks.extend(buf.reshape(-1) for _, buf in module.named_buffers())
    return np.concatenate(chunks) if chunks else np.empty(0)


def seed_unflatten(module, flat: np.ndarray) -> None:
    flat = np.asarray(flat)
    cursor = 0
    params = dict(module.named_parameters())
    for name, param in params.items():
        size = int(param.data.size)
        param.data = flat[cursor : cursor + size].reshape(param.data.shape).copy()
        cursor += size
    owners = module._buffer_owners()
    for name, _ in list(module.named_buffers()):
        owner, local = owners[name]
        buf = owner._buffers[local]
        size = int(buf.size)
        owner.set_buffer(local, flat[cursor : cursor + size].reshape(buf.shape))
        cursor += size


def seed_sgd_step(params, lr, momentum, weight_decay, buffers):
    for index, param in enumerate(params):
        grad = param.grad
        if weight_decay:
            grad = grad + weight_decay * param.data
        if momentum:
            buf = buffers[index]
            if buf is None:
                buf = grad.copy()
            else:
                buf *= momentum
                buf += grad
            buffers[index] = buf
            grad = buf
        param.data -= lr * grad


def seed_adam_step(params, lr, beta1, beta2, eps, state):
    state["t"] += 1
    t = state["t"]
    for index, param in enumerate(params):
        grad = param.grad
        m, v = state["m"][index], state["v"][index]
        m *= beta1
        m += (1 - beta1) * grad
        v *= beta2
        v += (1 - beta2) * grad**2
        m_hat = m / (1 - beta1**t)
        v_hat = v / (1 - beta2**t)
        param.data -= lr * m_hat / (np.sqrt(v_hat) + eps)


@contextmanager
def legacy_device_paths():
    """Route every Device through the seed codec path (no arena reads)."""

    def legacy_get(self):
        return seed_flatten(self.model)

    def legacy_set(self, flat):
        seed_unflatten(self.model, flat)

    def legacy_mix(self, incoming, own_weight=0.5):
        if not 0.0 <= own_weight <= 1.0:
            raise ValueError(f"own_weight must be in [0, 1], got {own_weight}")
        current = seed_flatten(self.model)
        seed_unflatten(
            self.model, own_weight * current + (1.0 - own_weight) * incoming
        )

    saved = (
        Device.get_params,
        Device.get_params_view,
        Device.set_params,
        Device.mix_params,
    )
    Device.get_params = legacy_get
    Device.get_params_view = legacy_get
    Device.set_params = legacy_set
    Device.mix_params = legacy_mix
    try:
        yield
    finally:
        (
            Device.get_params,
            Device.get_params_view,
            Device.set_params,
            Device.mix_params,
        ) = saved


# --------------------------------------------------------------------- #
# Timing helpers
# --------------------------------------------------------------------- #


def _best_of(fn, repeats: int, inner: int) -> float:
    """Best per-call seconds over ``repeats`` trials of ``inner`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def _make_model(seed=0):
    return models.resnet_mini(num_classes=10, rng=np.random.default_rng(seed))


def _seeded_grads(model, seed=7):
    rng = np.random.default_rng(seed)
    for param in model.parameters():
        param.grad = rng.normal(size=param.data.shape)


# --------------------------------------------------------------------- #
# Benchmarks
# --------------------------------------------------------------------- #


def bench_codec(repeats: int, inner: int) -> dict:
    legacy_model = _make_model(0)
    arena_model = _make_model(0)
    arena = ParamArena(arena_model)
    probe = seed_flatten(legacy_model)

    def legacy_roundtrip():
        flat = seed_flatten(legacy_model)
        seed_unflatten(legacy_model, flat)

    def arena_roundtrip():
        flat = arena.snapshot()
        arena.write(flat)

    seed_s = _best_of(legacy_roundtrip, repeats, inner)
    arena_s = _best_of(arena_roundtrip, repeats, inner)
    np.testing.assert_array_equal(arena.snapshot(), probe)
    return {
        "num_scalars": int(probe.size),
        "seed_s": seed_s,
        "arena_s": arena_s,
        "speedup": seed_s / arena_s,
    }


def bench_sgd(repeats: int, inner: int) -> dict:
    lr, momentum, wd = 0.01, 0.9, 1e-4
    legacy_model = _make_model(1)
    fused_model = _make_model(1)
    ParamArena(fused_model)
    _seeded_grads(legacy_model)
    _seeded_grads(fused_model)
    legacy_params = legacy_model.parameters()
    legacy_buffers = [None] * len(legacy_params)
    fused_opt = SGD(fused_model.parameters(), lr=lr, momentum=momentum, weight_decay=wd)

    seed_s = _best_of(
        lambda: seed_sgd_step(legacy_params, lr, momentum, wd, legacy_buffers),
        repeats,
        inner,
    )
    fused_s = _best_of(fused_opt.step, repeats, inner)
    return {"seed_s": seed_s, "fused_s": fused_s, "speedup": seed_s / fused_s}


def bench_adam(repeats: int, inner: int) -> dict:
    lr, beta1, beta2, eps = 1e-3, 0.9, 0.999, 1e-8
    legacy_model = _make_model(2)
    fused_model = _make_model(2)
    ParamArena(fused_model)
    _seeded_grads(legacy_model)
    _seeded_grads(fused_model)
    legacy_params = legacy_model.parameters()
    legacy_state = {
        "t": 0,
        "m": [np.zeros_like(p.data) for p in legacy_params],
        "v": [np.zeros_like(p.data) for p in legacy_params],
    }
    fused_opt = Adam(fused_model.parameters(), lr=lr, betas=(beta1, beta2), eps=eps)

    seed_s = _best_of(
        lambda: seed_adam_step(legacy_params, lr, beta1, beta2, eps, legacy_state),
        repeats,
        inner,
    )
    fused_s = _best_of(fused_opt.step, repeats, inner)
    return {"seed_s": seed_s, "fused_s": fused_s, "speedup": seed_s / fused_s}


class SeedGatherSGD(SGD):
    """PR1–3 step semantics, replicated verbatim: per-parameter
    ``zero_grad`` loop and a per-step gather of every gradient into a
    scratch flat buffer before the fused kernel (no zero-copy grad
    adoption)."""

    def zero_grad(self):
        for param in self.params:
            param.zero_grad()

    def _try_fused_step(self):
        grads = []
        for param in self.params:
            grad = param.grad
            if grad is None:
                return False
            grads.append(grad)
        flat = self._bind_flat()
        if flat is None:
            return False
        flat_grad = self._flat_grad
        if flat_grad is None:
            flat_grad = self._flat_grad = np.empty(
                self.num_scalars, dtype=np.float64
            )
        for grad, sl in zip(grads, self._slices):
            flat_grad[sl] = grad.reshape(-1)
        return self._fused_update(flat, flat_grad)


def _grad_path_model(seed=5, depth=16, width=32, num_inputs=24):
    """Deep, narrow MLP: many small parameter tensors, so per-parameter
    gradient bookkeeping is a visible share of a local step."""
    from repro import nn

    rng = np.random.default_rng(seed)
    layers = []
    fan_in = num_inputs
    for _ in range(depth):
        layers.append(nn.Linear(fan_in, width, rng=rng))
        layers.append(nn.ReLU())
        fan_in = width
    layers.append(nn.Linear(fan_in, 10, rng=rng))
    return nn.Sequential(*layers)


def bench_grad_path(repeats: int, inner: int) -> dict:
    """backward + zero_grad + step: gather-based seed vs grad arena.

    The seed side is ``ParamArena(bind_grads=False)`` (per-tensor
    gradient allocation in backward) driven by :class:`SeedGatherSGD`
    (per-parameter ``zero_grad`` loop + per-step gather) — the exact
    pre-grad-arena hot path.  The arena side accumulates straight into
    ``grad_flat``, zeroes it with one fill and steps off it zero-copy.

    Two measurements per side:

    * ``micro`` — the backward+zero_grad+step section of a real training
      cycle (a fresh forward rebuilds the graph each iteration but is
      excluded from the timed section);
    * ``step`` — the optimizer step alone on gradients left by a real
      backward, where removing the gather shows directly.

    Both sides consume the same fixed batch, so the cycle losses must be
    bitwise identical — asserted below, as is the zero-gather property.
    """
    from repro.autograd import Tensor
    from repro.nn.losses import CrossEntropyLoss

    lr, momentum, wd = 0.01, 0.9, 1e-4
    rng = np.random.default_rng(6)
    x = rng.normal(size=(8, 24))
    y = rng.integers(0, 10, size=8)
    loss_fn = CrossEntropyLoss()

    def make_side(bind_grads):
        model = _grad_path_model()
        ParamArena(model, bind_grads=bind_grads)
        opt_cls = SGD if bind_grads else SeedGatherSGD
        opt = opt_cls(model.parameters(), lr=lr, momentum=momentum, weight_decay=wd)
        return model, opt

    def run_micro(bind_grads):
        model, opt = make_side(bind_grads)
        losses = []

        def timed_section() -> float:
            loss = loss_fn(model(Tensor(x)), y)  # untimed: rebuild graph
            start = time.perf_counter()
            opt.zero_grad()
            loss.backward()
            opt.step()
            elapsed = time.perf_counter() - start
            losses.append(float(loss.data))
            return elapsed

        best = float("inf")
        for _ in range(repeats):
            total = 0.0
            for _ in range(inner):
                total += timed_section()
            best = min(best, total / inner)
        return best, losses, opt

    def run_step(bind_grads):
        model, opt = make_side(bind_grads)
        loss_fn(model(Tensor(x)), y).backward()  # one real backward
        step_s = _best_of(opt.step, repeats, inner)
        flat = np.concatenate([p.data.reshape(-1) for p in model.parameters()])
        return step_s, flat, opt

    seed_micro_s, seed_losses, seed_opt = run_micro(bind_grads=False)
    arena_micro_s, arena_losses, arena_opt = run_micro(bind_grads=True)
    assert seed_opt._flat_grad is not None, "seed emulation did not gather"
    assert arena_opt._flat_grad is None, "grad arena path fell back to the gather"
    seed_step_s, seed_flat, _ = run_step(bind_grads=False)
    arena_step_s, arena_flat, step_opt = run_step(bind_grads=True)
    assert step_opt._flat_grad is None, "grad arena step gathered"
    np.testing.assert_array_equal(seed_flat, arena_flat)
    return {
        "num_params": len(seed_opt.params),
        "num_scalars": seed_opt.num_scalars,
        "seed_s": seed_step_s,
        "arena_s": arena_step_s,
        "speedup": seed_step_s / arena_step_s,
        "micro_seed_s": seed_micro_s,
        "micro_arena_s": arena_micro_s,
        "micro_speedup": seed_micro_s / arena_micro_s,
        "losses_bitwise_equal": seed_losses == arena_losses,
    }


def _make_cluster(seed=3):
    train, test = synthetic_cifar10(
        num_train=192, num_test=96, image_size=8, seed=seed
    )
    specs = [
        DeviceSpec(device_id=i, power=p, base_step_time=0.1)
        for i, p in enumerate((3.0, 3.0, 1.0, 1.0))
    ]
    return SimulatedCluster(
        model_factory=lambda rng: models.resnet_mini(num_classes=10, rng=rng),
        train_set=train,
        test_set=test,
        specs=specs,
        batch_size=16,
        seed=seed,
    )


def _run_rounds(legacy: bool, rounds: int = 2):
    cluster = _make_cluster()
    trainer = HADFLTrainer(cluster, HADFLParams(warmup_epochs=1), seed=5)
    if legacy:
        for device in cluster.devices:
            device.optimizer.fused = False
    start = time.perf_counter()
    if legacy:
        with legacy_device_paths():
            result = trainer.run(target_epochs=1e9, max_rounds=rounds)
    else:
        result = trainer.run(target_epochs=1e9, max_rounds=rounds)
    elapsed = time.perf_counter() - start
    return elapsed, [r.train_loss for r in result.rounds]


def bench_hadfl_round(rounds: int = 2) -> dict:
    seed_s, seed_losses = _run_rounds(legacy=True, rounds=rounds)
    arena_s, arena_losses = _run_rounds(legacy=False, rounds=rounds)
    losses_equal = seed_losses == arena_losses
    return {
        "rounds": rounds,
        "seed_s": seed_s / rounds,
        "arena_s": arena_s / rounds,
        "speedup": seed_s / arena_s,
        "losses_bitwise_equal": bool(losses_equal),
        "train_losses": arena_losses,
    }


def run(repeats: int = None) -> dict:
    if repeats is None:
        repeats = int(os.environ.get("REPRO_BENCH_HOTPATH_REPEATS", 5))
    inner = 20
    results = {
        "codec_roundtrip": bench_codec(repeats, inner),
        "sgd_step": bench_sgd(repeats, inner),
        "adam_step": bench_adam(repeats, inner),
        "grad_path": bench_grad_path(repeats, inner),
        "hadfl_round": bench_hadfl_round(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "hotpath.json"
    path.write_text(json.dumps(results, indent=2))
    return results


def main() -> dict:
    results = run()
    for name, entry in results.items():
        print(
            f"{name:18s} speedup {entry['speedup']:6.2f}x  "
            + "  ".join(
                f"{k}={entry[k]:.3e}"
                for k in ("seed_s", "arena_s", "fused_s")
                if k in entry
            )
        )
    return results


if __name__ == "__main__":
    main()
