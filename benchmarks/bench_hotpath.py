"""Hot-path microbenchmark: flat arena + fused optimizers vs seed paths.

Times the three bookkeeping hot spots the flat parameter arena removes,
each against a faithful re-implementation of the seed (pre-arena) code:

* **codec round-trip** — full model state out and back in.  Seed: per-
  parameter ``np.concatenate`` + ``.copy()`` + ``dict(named_parameters)``
  and ``_buffer_owners()`` rebuilt on every call.  Arena: one vectorized
  copy out, one vectorized write back.
* **optimizer step** — SGD (momentum + weight decay) and Adam.  Seed:
  per-parameter Python loop allocating fresh temporaries.  Fused: flat
  gather + a fixed number of in-place full-vector ops.
* **one full HADFL round** — ``HADFLTrainer`` on a tiny cluster, stock
  vs devices patched back onto the seed codec path with fused kernels
  disabled.  Also checks the fixed-seed loss trajectories are identical,
  the bit-for-bit guarantee the refactor makes.

Writes machine-readable results to ``benchmarks/results/hotpath.json``
(see ``benchmarks/run_bench.py`` for the repo-root ``BENCH_hotpath.json``
trajectory artefact).  Scale via ``REPRO_BENCH_HOTPATH_REPEATS``.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.comm.params import ParamArena
from repro.core.config import HADFLParams
from repro.core.trainer import HADFLTrainer
from repro.data import synthetic_cifar10
from repro.nn import models
from repro.optim import SGD, Adam
from repro.sim import Device, DeviceSpec, SimulatedCluster

RESULTS_DIR = Path(__file__).parent / "results"


# --------------------------------------------------------------------- #
# Seed (pre-arena) reference implementations, replicated verbatim from
# the original ``FlatParamCodec``/optimizer code paths.
# --------------------------------------------------------------------- #


def seed_flatten(module) -> np.ndarray:
    chunks = [param.data.reshape(-1) for _, param in module.named_parameters()]
    chunks.extend(buf.reshape(-1) for _, buf in module.named_buffers())
    return np.concatenate(chunks) if chunks else np.empty(0)


def seed_unflatten(module, flat: np.ndarray) -> None:
    flat = np.asarray(flat)
    cursor = 0
    params = dict(module.named_parameters())
    for name, param in params.items():
        size = int(param.data.size)
        param.data = flat[cursor : cursor + size].reshape(param.data.shape).copy()
        cursor += size
    owners = module._buffer_owners()
    for name, _ in list(module.named_buffers()):
        owner, local = owners[name]
        buf = owner._buffers[local]
        size = int(buf.size)
        owner.set_buffer(local, flat[cursor : cursor + size].reshape(buf.shape))
        cursor += size


def seed_sgd_step(params, lr, momentum, weight_decay, buffers):
    for index, param in enumerate(params):
        grad = param.grad
        if weight_decay:
            grad = grad + weight_decay * param.data
        if momentum:
            buf = buffers[index]
            if buf is None:
                buf = grad.copy()
            else:
                buf *= momentum
                buf += grad
            buffers[index] = buf
            grad = buf
        param.data -= lr * grad


def seed_adam_step(params, lr, beta1, beta2, eps, state):
    state["t"] += 1
    t = state["t"]
    for index, param in enumerate(params):
        grad = param.grad
        m, v = state["m"][index], state["v"][index]
        m *= beta1
        m += (1 - beta1) * grad
        v *= beta2
        v += (1 - beta2) * grad**2
        m_hat = m / (1 - beta1**t)
        v_hat = v / (1 - beta2**t)
        param.data -= lr * m_hat / (np.sqrt(v_hat) + eps)


@contextmanager
def legacy_device_paths():
    """Route every Device through the seed codec path (no arena reads)."""

    def legacy_get(self):
        return seed_flatten(self.model)

    def legacy_set(self, flat):
        seed_unflatten(self.model, flat)

    def legacy_mix(self, incoming, own_weight=0.5):
        if not 0.0 <= own_weight <= 1.0:
            raise ValueError(f"own_weight must be in [0, 1], got {own_weight}")
        current = seed_flatten(self.model)
        seed_unflatten(
            self.model, own_weight * current + (1.0 - own_weight) * incoming
        )

    saved = (
        Device.get_params,
        Device.get_params_view,
        Device.set_params,
        Device.mix_params,
    )
    Device.get_params = legacy_get
    Device.get_params_view = legacy_get
    Device.set_params = legacy_set
    Device.mix_params = legacy_mix
    try:
        yield
    finally:
        (
            Device.get_params,
            Device.get_params_view,
            Device.set_params,
            Device.mix_params,
        ) = saved


# --------------------------------------------------------------------- #
# Timing helpers
# --------------------------------------------------------------------- #


def _best_of(fn, repeats: int, inner: int) -> float:
    """Best per-call seconds over ``repeats`` trials of ``inner`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def _make_model(seed=0):
    return models.resnet_mini(num_classes=10, rng=np.random.default_rng(seed))


def _seeded_grads(model, seed=7):
    rng = np.random.default_rng(seed)
    for param in model.parameters():
        param.grad = rng.normal(size=param.data.shape)


# --------------------------------------------------------------------- #
# Benchmarks
# --------------------------------------------------------------------- #


def bench_codec(repeats: int, inner: int) -> dict:
    legacy_model = _make_model(0)
    arena_model = _make_model(0)
    arena = ParamArena(arena_model)
    probe = seed_flatten(legacy_model)

    def legacy_roundtrip():
        flat = seed_flatten(legacy_model)
        seed_unflatten(legacy_model, flat)

    def arena_roundtrip():
        flat = arena.snapshot()
        arena.write(flat)

    seed_s = _best_of(legacy_roundtrip, repeats, inner)
    arena_s = _best_of(arena_roundtrip, repeats, inner)
    np.testing.assert_array_equal(arena.snapshot(), probe)
    return {
        "num_scalars": int(probe.size),
        "seed_s": seed_s,
        "arena_s": arena_s,
        "speedup": seed_s / arena_s,
    }


def bench_sgd(repeats: int, inner: int) -> dict:
    lr, momentum, wd = 0.01, 0.9, 1e-4
    legacy_model = _make_model(1)
    fused_model = _make_model(1)
    ParamArena(fused_model)
    _seeded_grads(legacy_model)
    _seeded_grads(fused_model)
    legacy_params = legacy_model.parameters()
    legacy_buffers = [None] * len(legacy_params)
    fused_opt = SGD(fused_model.parameters(), lr=lr, momentum=momentum, weight_decay=wd)

    seed_s = _best_of(
        lambda: seed_sgd_step(legacy_params, lr, momentum, wd, legacy_buffers),
        repeats,
        inner,
    )
    fused_s = _best_of(fused_opt.step, repeats, inner)
    return {"seed_s": seed_s, "fused_s": fused_s, "speedup": seed_s / fused_s}


def bench_adam(repeats: int, inner: int) -> dict:
    lr, beta1, beta2, eps = 1e-3, 0.9, 0.999, 1e-8
    legacy_model = _make_model(2)
    fused_model = _make_model(2)
    ParamArena(fused_model)
    _seeded_grads(legacy_model)
    _seeded_grads(fused_model)
    legacy_params = legacy_model.parameters()
    legacy_state = {
        "t": 0,
        "m": [np.zeros_like(p.data) for p in legacy_params],
        "v": [np.zeros_like(p.data) for p in legacy_params],
    }
    fused_opt = Adam(fused_model.parameters(), lr=lr, betas=(beta1, beta2), eps=eps)

    seed_s = _best_of(
        lambda: seed_adam_step(legacy_params, lr, beta1, beta2, eps, legacy_state),
        repeats,
        inner,
    )
    fused_s = _best_of(fused_opt.step, repeats, inner)
    return {"seed_s": seed_s, "fused_s": fused_s, "speedup": seed_s / fused_s}


def _make_cluster(seed=3):
    train, test = synthetic_cifar10(
        num_train=192, num_test=96, image_size=8, seed=seed
    )
    specs = [
        DeviceSpec(device_id=i, power=p, base_step_time=0.1)
        for i, p in enumerate((3.0, 3.0, 1.0, 1.0))
    ]
    return SimulatedCluster(
        model_factory=lambda rng: models.resnet_mini(num_classes=10, rng=rng),
        train_set=train,
        test_set=test,
        specs=specs,
        batch_size=16,
        seed=seed,
    )


def _run_rounds(legacy: bool, rounds: int = 2):
    cluster = _make_cluster()
    trainer = HADFLTrainer(cluster, HADFLParams(warmup_epochs=1), seed=5)
    if legacy:
        for device in cluster.devices:
            device.optimizer.fused = False
    start = time.perf_counter()
    if legacy:
        with legacy_device_paths():
            result = trainer.run(target_epochs=1e9, max_rounds=rounds)
    else:
        result = trainer.run(target_epochs=1e9, max_rounds=rounds)
    elapsed = time.perf_counter() - start
    return elapsed, [r.train_loss for r in result.rounds]


def bench_hadfl_round(rounds: int = 2) -> dict:
    seed_s, seed_losses = _run_rounds(legacy=True, rounds=rounds)
    arena_s, arena_losses = _run_rounds(legacy=False, rounds=rounds)
    losses_equal = seed_losses == arena_losses
    return {
        "rounds": rounds,
        "seed_s": seed_s / rounds,
        "arena_s": arena_s / rounds,
        "speedup": seed_s / arena_s,
        "losses_bitwise_equal": bool(losses_equal),
        "train_losses": arena_losses,
    }


def run(repeats: int = None) -> dict:
    if repeats is None:
        repeats = int(os.environ.get("REPRO_BENCH_HOTPATH_REPEATS", 5))
    inner = 20
    results = {
        "codec_roundtrip": bench_codec(repeats, inner),
        "sgd_step": bench_sgd(repeats, inner),
        "adam_step": bench_adam(repeats, inner),
        "hadfl_round": bench_hadfl_round(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "hotpath.json"
    path.write_text(json.dumps(results, indent=2))
    return results


def main() -> dict:
    results = run()
    for name, entry in results.items():
        print(
            f"{name:18s} speedup {entry['speedup']:6.2f}x  "
            + "  ".join(
                f"{k}={entry[k]:.3e}"
                for k in ("seed_s", "arena_s", "fused_s")
                if k in entry
            )
        )
    return results


if __name__ == "__main__":
    main()
