"""Ablation — N_p, the partial-synchronisation width (paper Sec. IV-B).

"By allowing more GPUs to participate in partial synchronization, the
training effect can be better, which is because the waste of efforts on
unselected devices is less."

Expected shape: accuracy at matched epochs improves (or holds) as N_p
grows from 1 to K; sync cost per round grows with the ring size.
"""

from benchmarks.conftest import bench_config, write_artifact
from repro.experiments import HETEROGENEITY_4221, ablate_num_selected
from repro.metrics.report import render_table


def _run():
    config = bench_config(model="resnet_mini", power_ratio=HETEROGENEITY_4221)
    return ablate_num_selected(config, values=(1, 2, 3, 4))


def test_ablation_num_selected(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for num_selected, result in sorted(results.items()):
        rows.append(
            [
                str(num_selected),
                f"{result.best_accuracy() * 100:.1f}%",
                f"{result.total_time:.1f} s",
                f"{result.total_comm_bytes:,}",
            ]
        )
    table = render_table(
        ["N_p", "max accuracy", "total time", "comm bytes"], rows
    )
    print("\n" + table)
    write_artifact("ablation_np.txt", table + "\n")

    # Full participation beats minimal participation on accuracy.
    assert results[4].best_accuracy() >= results[1].best_accuracy() - 0.02
    # Wider rings move more bytes per round.
    assert results[4].total_comm_bytes > results[1].total_comm_bytes * 0.8
