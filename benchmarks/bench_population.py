"""Population benchmark: memory stays O(participants), not O(population).

Sweeps the virtual-population size at a fixed participant count and
records, per population:

* **peak RSS** — measured in a fresh subprocess per point (``ru_maxrss``
  is process-monotone, so sharing one process would hide growth);
* **round throughput** — rounds/s and per-local-step wall seconds;
* **pool telemetry** — arena blocks ever built, high-water mark,
  recycle count.

Acceptance floors (full mode only; ``--quick`` keeps the invariant
assertions but not the machine-speed floors):

* ``pool.max_resident <= participants`` at **every** population — the
  bounded-memory contract (asserted in every mode, inside the child);
* peak RSS grows by at most ``RSS_GROWTH_FLOOR_MB`` from the smallest
  to the largest population — the only O(population) state is vector
  bookkeeping (the int64 version array, availability hashing), never
  model replicas;
* population per-step time within ``THROUGHPUT_FLOOR``x of a dense
  8-device HADFL run — lazy materialisation + pooling must not tax the
  training hot path.

Writes ``benchmarks/results/population.json`` and the repo-root
trajectory artefact ``BENCH_population.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_population.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

POPULATIONS = (10_000, 100_000, 1_000_000)
POPULATIONS_QUICK = (1_000, 10_000)
PARTICIPANTS = 100
PARTICIPANTS_QUICK = 16
ROUNDS = 3
RSS_GROWTH_FLOOR_MB = 400.0  # vector state for 10^6 devices, with slack
THROUGHPUT_FLOOR = 2.0  # per-step time vs the dense 8-device run


def _peak_rss_mb() -> float:
    """Peak resident set of this process, in MiB.

    Prefers ``VmHWM`` from ``/proc/self/status``: it belongs to the
    current address space and is reset at exec, whereas ``ru_maxrss``
    can inherit the forking parent's high-water mark (a child spawned
    by ``run_bench.py`` after the other benches would report the
    parent's peak, not its own).
    """
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return float(line.split()[1]) / 1024.0  # KiB -> MiB
    except OSError:
        pass
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # bytes on macOS
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


# --------------------------------------------------------------------- #
# Child workloads — run in a fresh interpreter per measurement point so
# ru_maxrss reflects this point alone.
# --------------------------------------------------------------------- #
def _child_population(spec: dict) -> dict:
    from repro.experiments.population import PopulationConfig, run_population

    config = PopulationConfig(
        population=spec["population"],
        participants=spec["participants"],
        rounds=spec["rounds"],
        round_window=0.5,
        shard_size=48,
        num_train=512,
        num_test=64,
        batch_size=16,
        availability="diurnal",
        seed=3,
    )
    build_start = time.perf_counter()
    result = run_population(config)
    elapsed = time.perf_counter() - build_start
    pool = result.config["pool"]
    # The bounded-memory contract, enforced at every scale and mode.
    assert pool["max_resident"] <= config.participants, (
        f"{pool['max_resident']} resident arenas for "
        f"{config.participants} participants"
    )
    # Conservation: every byte the accountant saw belongs to a round.
    per_round = sum(r.comm_bytes for r in result.rounds)
    assert per_round == result.config["accounting"]["total_bytes"]
    steps = round(
        result.rounds[-1].global_epoch * config.num_train / config.batch_size
    )
    return {
        "population": config.population,
        "participants": config.participants,
        "rounds": config.rounds,
        "seconds": round(elapsed, 4),
        "rounds_per_s": round(config.rounds / elapsed, 4),
        "local_steps": steps,
        "s_per_step": round(elapsed / max(1, steps), 6),
        "pool": pool,
        "peak_rss_mb": round(_peak_rss_mb(), 2),
    }


def _child_dense(spec: dict) -> dict:
    from repro.core import HADFLTrainer
    from repro.experiments import ExperimentConfig

    config = ExperimentConfig(
        model="mlp",
        power_ratio=(3, 3, 1, 1, 3, 3, 1, 1),
        num_train=512,
        num_test=64,
        image_size=8,
        batch_size=16,
        seed=3,
    )
    start = time.perf_counter()
    trainer = HADFLTrainer(config.make_cluster(), params=config.hadfl_params())
    result = trainer.run(target_epochs=spec["epochs"])
    elapsed = time.perf_counter() - start
    steps = round(
        result.rounds[-1].global_epoch * config.num_train / config.batch_size
    )
    return {
        "devices": config.num_devices,
        "rounds": len(result.rounds),
        "seconds": round(elapsed, 4),
        "local_steps": steps,
        "s_per_step": round(elapsed / max(1, steps), 6),
        "peak_rss_mb": round(_peak_rss_mb(), 2),
    }


def _run_child(kind: str, spec: dict) -> dict:
    """One measurement point in a fresh interpreter."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, __file__, "--child", kind, json.dumps(spec)],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"child {kind} {spec} failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


# --------------------------------------------------------------------- #
def run(
    populations=POPULATIONS,
    participants: int = PARTICIPANTS,
    rounds: int = ROUNDS,
    enforce_floor: bool = True,
) -> dict:
    sweep = []
    for population in populations:
        row = _run_child(
            "pop",
            {
                "population": population,
                "participants": participants,
                "rounds": rounds,
            },
        )
        print(
            f"population {population:>9,}: {row['rounds_per_s']:.3f} rounds/s, "
            f"peak RSS {row['peak_rss_mb']:.1f} MiB, "
            f"pool max_resident {row['pool']['max_resident']}"
        )
        sweep.append(row)
    dense = _run_child("dense", {"epochs": 3.0})
    print(
        f"dense 8-device: {dense['s_per_step'] * 1e3:.3f} ms/step, "
        f"peak RSS {dense['peak_rss_mb']:.1f} MiB"
    )
    step_ratio = sweep[-1]["s_per_step"] / dense["s_per_step"]
    rss_growth = sweep[-1]["peak_rss_mb"] - sweep[0]["peak_rss_mb"]
    results = {
        "participants": participants,
        "rounds": rounds,
        "rss_growth_floor_mb": RSS_GROWTH_FLOOR_MB,
        "throughput_floor": THROUGHPUT_FLOOR,
        "sweep": sweep,
        "dense_baseline": dense,
        "step_time_vs_dense": round(step_ratio, 4),
        "rss_growth_mb": round(rss_growth, 2),
    }
    if enforce_floor:
        assert rss_growth <= RSS_GROWTH_FLOOR_MB, (
            f"peak RSS grew {rss_growth:.1f} MiB from population "
            f"{sweep[0]['population']:,} to {sweep[-1]['population']:,} "
            f"(floor {RSS_GROWTH_FLOOR_MB} MiB) — arenas are leaking "
            "population-proportional state"
        )
        assert step_ratio <= THROUGHPUT_FLOOR, (
            f"population per-step time is {step_ratio:.2f}x the dense run "
            f"(floor {THROUGHPUT_FLOOR}x)"
        )
    return results


def main(quick: bool = False) -> dict:
    if quick or os.environ.get("REPRO_BENCH_QUICK"):
        # Tiny sizes for CI smoke: the bounded-pool and accounting
        # assertions still run (inside every child); the RSS/throughput
        # floors need the full sweep and are skipped.
        results = run(
            populations=POPULATIONS_QUICK,
            participants=PARTICIPANTS_QUICK,
            rounds=2,
            enforce_floor=False,
        )
    else:
        results = run()
    out_dir = REPO_ROOT / "benchmarks" / "results"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "population.json").write_text(json.dumps(results, indent=2))
    payload = {
        "bench": "population",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": results,
    }
    out = REPO_ROOT / "BENCH_population.json"
    out.write_text(json.dumps(payload, indent=2))
    print(f"wrote {out}")
    return payload


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="tiny sizes for CI smoke runs"
    )
    parser.add_argument(
        "--child",
        nargs=2,
        metavar=("KIND", "SPEC"),
        help=argparse.SUPPRESS,  # internal: one measurement point
    )
    args = parser.parse_args()
    if args.child:
        kind, raw = args.child
        spec = json.loads(raw)
        worker = _child_population if kind == "pop" else _child_dense
        print(json.dumps(worker(spec)))
    else:
        main(quick=args.quick)
