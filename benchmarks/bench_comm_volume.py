"""Communication volume (paper Sec. II-B and III-D claims).

Checks the implementation against the paper's arithmetic:

* centralised FedAvg server traffic = ``2 · M · K · epochs / E``;
* per-round device total = ``2 · K · M`` for both FL and HADFL;
* HADFL removes the server (coordinator moves control messages only);
* per-iteration all-reduce (distributed baseline) moves an order of
  magnitude more bytes over a run than HADFL.
"""

from benchmarks.conftest import bench_config, write_artifact
from repro.baselines import CentralizedFedAvgTrainer
from repro.comm import device_volume, fedavg_server_volume
from repro.core import HADFLTrainer
from repro.experiments import HETEROGENEITY_3311, run_scheme
from repro.metrics.report import render_table


def _run():
    config = bench_config(
        model="resnet_mini", power_ratio=HETEROGENEITY_3311,
        target_epochs=min(8.0, bench_config().target_epochs),
    )
    cluster = config.make_cluster()
    hadfl_trainer = HADFLTrainer(cluster, params=config.hadfl_params(), seed=1)
    hadfl = hadfl_trainer.run(target_epochs=config.target_epochs)
    dist = run_scheme("distributed", config)
    fedavg = run_scheme("decentralized_fedavg", config)
    central_cluster = config.make_cluster()
    central_trainer = CentralizedFedAvgTrainer(central_cluster, seed=1)
    central = central_trainer.run(target_epochs=config.target_epochs)
    return config, cluster, hadfl_trainer, central_trainer, {
        "hadfl": hadfl,
        "distributed": dist,
        "decentralized_fedavg": fedavg,
        "centralized_fedavg": central,
    }


def test_comm_volume(benchmark):
    config, cluster, hadfl_trainer, central_trainer, results = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    m = cluster.model_nbytes
    k = len(cluster.devices)

    rows = [
        ["model size M", f"{m:,} B", "", ""],
        [
            "analytic 2KM / round",
            f"{device_volume(m, k):,.0f} B",
            "",
            "",
        ],
        [
            "FedAvg server volume (10 ep, E=12)",
            f"{fedavg_server_volume(m, k, 10, 12):,.0f} B",
            "",
            "(centralised reference)",
        ],
    ]
    for name, result in results.items():
        rows.append(
            [
                f"measured total: {name}",
                f"{result.total_comm_bytes:,} B",
                f"{result.total_epochs:.1f} epochs",
                f"{len(result.rounds)} rounds",
            ]
        )
    table = render_table(["quantity", "bytes", "epochs", "note"], rows)
    print("\n" + table)
    write_artifact("comm_volume.txt", table + "\n")

    # Per-round HADFL device traffic never exceeds the paper's 2KM bound
    # (small slack for repair control messages).
    bound = device_volume(m, k) * 1.05
    for record in results["hadfl"].rounds:
        assert record.comm_bytes <= bound

    # Distributed training moves far more bytes per epoch.
    per_epoch_dist = (
        results["distributed"].total_comm_bytes / results["distributed"].total_epochs
    )
    per_epoch_hadfl = (
        results["hadfl"].total_comm_bytes / results["hadfl"].total_epochs
    )
    assert per_epoch_dist > 3 * per_epoch_hadfl

    # Decentralisation claim: the coordinator never relayed model payloads
    # beyond the one-time initial dispatch.
    kinds = hadfl_trainer.volume.bytes_by_kind()
    assert set(kinds) <= {"initial_dispatch", "partial_sync", "broadcast"}

    # Centralised reference: the server moved exactly 2KM per round
    # (Sec. II-B's arithmetic, measured on a running implementation).
    rounds = len(results["centralized_fedavg"].rounds)
    assert central_trainer.server_bytes == rounds * int(device_volume(m, k))
