"""Ablation — version-predictor smoothing factor α (paper Sec. III-B).

Measures Eq. 7's one-step forecast error on drifting device speeds for a
sweep of α under two drift regimes, and end-to-end HADFL accuracy with
adaptation on vs off under per-step jitter.

Expected shape: under *smooth* drift with measurement noise, small α wins
(Brown's trend term tracks a linear ramp at any α, so extra α only
amplifies noise); after an *abrupt* speed change, large α re-converges
fastest ("the larger α, the closer the predicted value to v_i") — the
trade-off behind the default α = 0.5.
"""

from benchmarks.conftest import bench_config, write_artifact
from repro.experiments import HETEROGENEITY_3311, ablate_predictor_alpha, run_scheme
from repro.metrics.report import render_table

ALPHAS = (0.1, 0.3, 0.5, 0.7, 0.9)


def _forecast_errors():
    linear = ablate_predictor_alpha(
        alphas=ALPHAS, drift_per_round=0.03, jitter=0.05, mode="linear"
    )
    step = ablate_predictor_alpha(
        alphas=ALPHAS, drift_per_round=0.0, jitter=0.05, mode="step"
    )
    return linear, step


def test_predictor_alpha_forecast_error(benchmark):
    linear, step = benchmark.pedantic(_forecast_errors, rounds=1, iterations=1)
    rows = [
        [f"{alpha:.1f}", f"{linear[alpha]:.3f} steps", f"{step[alpha]:.3f} steps"]
        for alpha in ALPHAS
    ]
    table = render_table(
        ["alpha", "smooth drift error", "abrupt change error"], rows
    )
    print("\n" + table)
    write_artifact("ablation_predictor_alpha.txt", table + "\n")

    # Smooth drift + noise: heavy smoothing (low alpha) filters best.
    assert linear[0.1] < linear[0.9]
    # Abrupt speed change: responsive (high alpha) recovers fastest.
    assert step[0.7] < step[0.1]


def test_adaptation_under_jitter(benchmark):
    def _run():
        config = bench_config(
            model="mlp",
            power_ratio=HETEROGENEITY_3311,
            jitter=0.15,
            target_epochs=min(10.0, bench_config().target_epochs),
        )
        on = run_scheme("hadfl", config.with_overrides(adapt_local_steps=True))
        off = run_scheme("hadfl", config.with_overrides(adapt_local_steps=False))
        return on, off

    on, off = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = (
        f"adaptive   : best {on.best_accuracy():.4f} in {on.total_time:.1f}s\n"
        f"static     : best {off.best_accuracy():.4f} in {off.total_time:.1f}s\n"
    )
    print("\n" + text)
    write_artifact("ablation_adaptation.txt", text)
    # Both must converge; adaptation must not hurt materially.
    assert on.best_accuracy() > 0.6
    assert on.best_accuracy() >= off.best_accuracy() - 0.08
