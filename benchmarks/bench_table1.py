"""Table I — time required to reach the maximum test accuracy.

Regenerates the paper's headline table: {ResNet, VGG} × {[3,3,1,1],
[4,2,2,1]} × {distributed, decentralized-FedAvg, HADFL}, reporting each
scheme's (max accuracy, first time attained) and HADFL's speedups.

Expected shape (paper): HADFL needs the least time in all four cells;
its advantage over distributed training grows from [3,3,1,1] to
[4,2,2,1]; accuracies match within ~1–3 points.
"""

from benchmarks.conftest import bench_config, write_artifact
from repro.experiments import HETEROGENEITY_3311, HETEROGENEITY_4221, run_table1
from repro.experiments.table1 import format_table1
from repro.metrics.convergence import time_to_max_accuracy


def _run_table1():
    cells = run_table1(
        bench_config(),
        models=("resnet_mini", "vgg_mini"),
        ratios=(HETEROGENEITY_3311, HETEROGENEITY_4221),
        repeats=1,
    )
    return cells


def test_table1(benchmark):
    cells = benchmark.pedantic(_run_table1, rounds=1, iterations=1)
    table = format_table1(cells)
    print("\n" + table)
    write_artifact("table1.txt", table + "\n")

    for cell in cells:
        times = {
            scheme: time_to_max_accuracy(result)[1]
            for scheme, result in cell.results.items()
        }
        # The paper's central claim: HADFL reaches its peak first.
        assert times["hadfl"] < times["distributed"], cell.model
        assert times["hadfl"] < times["decentralized_fedavg"], cell.model

    # Distributed training degrades with the stronger 4x straggler.
    by_key = {(c.model, c.power_ratio): c for c in cells}
    for model in ("resnet_mini", "vgg_mini"):
        t_33 = time_to_max_accuracy(
            by_key[(model, HETEROGENEITY_3311)].results["distributed"]
        )[1]
        t_42 = time_to_max_accuracy(
            by_key[(model, HETEROGENEITY_4221)].results["distributed"]
        )[1]
        assert t_42 > t_33 * 0.9
