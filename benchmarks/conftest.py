"""Shared benchmark configuration.

Benchmarks reproduce the paper's tables/figures on the NumPy substrate.
Scale is controlled by environment variables so CI stays fast while a
"paper-scale" run is one export away:

* ``REPRO_BENCH_TRAIN``  — training-set size        (default 800)
* ``REPRO_BENCH_TEST``   — test-set size            (default 400)
* ``REPRO_BENCH_EPOCHS`` — target global epochs     (default 14)
* ``REPRO_BENCH_IMAGE``  — image side in pixels     (default 8)

Each benchmark writes its reproduced table/figure to
``benchmarks/results/<name>.txt`` so the artefacts survive pytest's
output capture.
"""

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig

RESULTS_DIR = Path(__file__).parent / "results"


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def bench_config(**overrides) -> ExperimentConfig:
    base = dict(
        model="resnet_mini",
        num_train=_env_int("REPRO_BENCH_TRAIN", 800),
        num_test=_env_int("REPRO_BENCH_TEST", 400),
        image_size=_env_int("REPRO_BENCH_IMAGE", 8),
        batch_size=16,
        target_epochs=float(_env_int("REPRO_BENCH_EPOCHS", 14)),
        seed=1,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def write_artifact(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text)
    return path


@pytest.fixture
def artifact_writer():
    return write_artifact
