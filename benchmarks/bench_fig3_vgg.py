"""Fig. 3 (d)–(f) — VGG: loss vs epoch, accuracy vs epoch, accuracy vs time.

Regenerates the VGG row of Fig. 3 for both heterogeneity distributions.

Expected shape (paper): HADFL again climbs first in wall time; the paper
additionally observes that on VGG, decentralized-FedAvg needs *more* time
than distributed training (local-update staleness costs epochs), and that
the warm-up/mutual-negotiation phase stabilises HADFL's early accuracy
(panels e, f).
"""

import numpy as np

from benchmarks.conftest import bench_config, write_artifact
from repro.experiments import (
    HETEROGENEITY_3311,
    HETEROGENEITY_4221,
    run_fig3,
)
from repro.experiments.fig3 import format_fig3
from repro.metrics.convergence import time_to_max_accuracy
from repro.metrics.report import results_to_csv


def _run(ratio):
    config = bench_config(model="vgg_mini", power_ratio=ratio)
    return run_fig3(config, include_worst_case=True)


def test_fig3_vgg_3311(benchmark):
    results = benchmark.pedantic(
        _run, args=(HETEROGENEITY_3311,), rounds=1, iterations=1
    )
    panels = format_fig3(results, "vgg_mini [3,3,1,1]")
    print("\n" + panels)
    write_artifact("fig3_vgg_3311.txt", panels + "\n")
    for name, result in results.items():
        write_artifact(f"fig3_vgg_3311_{name}.csv", results_to_csv(result))
    _, t_hadfl = time_to_max_accuracy(results["hadfl"])
    _, t_dist = time_to_max_accuracy(results["distributed"])
    assert t_hadfl < t_dist
    # Early-training stability (panel e): HADFL's first evaluated accuracy
    # is already above chance thanks to the warm-up phase.
    assert results["hadfl"].test_accuracies()[0] > 0.12


def test_fig3_vgg_4221(benchmark):
    results = benchmark.pedantic(
        _run, args=(HETEROGENEITY_4221,), rounds=1, iterations=1
    )
    panels = format_fig3(results, "vgg_mini [4,2,2,1]")
    print("\n" + panels)
    write_artifact("fig3_vgg_4221.txt", panels + "\n")
    _, t_hadfl = time_to_max_accuracy(results["hadfl"])
    _, t_dist = time_to_max_accuracy(results["distributed"])
    assert t_hadfl < t_dist
    # Worst case converges lower, with visible late-stage fluctuation.
    accs_worst = results["hadfl_worst"].test_accuracies()
    accs_norm = results["hadfl"].test_accuracies()
    assert accs_worst.max() < accs_norm.max()
